"""RNG plumbing: determinism, independence, spawning."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import RngFactory, as_generator, sobol_like_grid, spawn_seeds


class TestAsGenerator:
    def test_int_seed_is_deterministic(self):
        a = as_generator(42).uniform(size=5)
        b = as_generator(42).uniform(size=5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough_shares_state(self):
        gen = np.random.default_rng(0)
        same = as_generator(gen)
        assert same is gen

    def test_none_gives_fresh_generator(self):
        a = as_generator(None)
        b = as_generator(None)
        assert isinstance(a, np.random.Generator)
        # Overwhelmingly unlikely to collide.
        assert not np.array_equal(a.uniform(size=8), b.uniform(size=8))

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        gen = as_generator(seq)
        assert isinstance(gen, np.random.Generator)


class TestSpawnSeeds:
    def test_count(self):
        assert len(spawn_seeds(0, 5)) == 5

    def test_deterministic(self):
        a = [s.entropy for s in spawn_seeds(1, 3)]
        b = [s.entropy for s in spawn_seeds(1, 3)]
        assert a == b

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    def test_children_differ(self):
        kids = spawn_seeds(9, 4)
        draws = [np.random.default_rng(k).uniform(size=4) for k in kids]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.array_equal(draws[i], draws[j])


class TestRngFactory:
    def test_same_name_same_instance(self):
        f = RngFactory(1)
        assert f.get("env") is f.get("env")

    def test_streams_independent_of_request_order(self):
        f1 = RngFactory(7)
        f2 = RngFactory(7)
        _ = f1.get("zzz")  # request another stream first
        a = f1.get("env").uniform(size=6)
        b = f2.get("env").uniform(size=6)
        np.testing.assert_array_equal(a, b)

    def test_different_names_differ(self):
        f = RngFactory(7)
        a = f.get("a").uniform(size=6)
        b = f.get("b").uniform(size=6)
        assert not np.array_equal(a, b)

    def test_seeds_helper_deterministic(self):
        assert RngFactory(3).seeds("w", 4) == RngFactory(3).seeds("w", 4)

    def test_different_master_seeds_differ(self):
        a = RngFactory(1).get("x").uniform(size=6)
        b = RngFactory(2).get("x").uniform(size=6)
        assert not np.array_equal(a, b)


class TestSobolLikeGrid:
    def test_shape_and_bounds(self):
        pts = sobol_like_grid(100, 3, rng=0)
        assert pts.shape == (100, 3)
        assert (pts >= 0).all() and (pts < 1).all()

    def test_zero_points(self):
        assert sobol_like_grid(0, 4).shape == (0, 4)

    @given(st.integers(min_value=2, max_value=64), st.integers(min_value=1, max_value=6))
    def test_better_spread_than_degenerate(self, n, dims):
        pts = sobol_like_grid(n, dims, rng=0)
        # All points distinct (lattice + jitter never collides).
        assert len(np.unique(pts.round(12), axis=0)) == n

    def test_covers_both_halves_in_each_dim(self):
        pts = sobol_like_grid(64, 2, rng=1)
        for d in range(2):
            assert (pts[:, d] < 0.5).any() and (pts[:, d] >= 0.5).any()
