"""Image states and the CNN-DQN integration (paper Section 5 extension)."""

import numpy as np
import pytest

from repro.env.docking_env import DockingEnv
from repro.env.image_state import (
    ImageStateEnv,
    render_density,
    render_projections,
)
from repro.metadock.engine import MetadockEngine
from repro.nn.conv import build_cnn
from repro.rl.agent import AgentConfig, DQNAgent
from repro.rl.trainer import Trainer


class TestRenderDensity:
    def test_shape_and_range(self, rng):
        pts = rng.normal(size=(30, 3)) * 4
        img = render_density(pts, np.zeros(3), 10.0, 16)
        assert img.shape == (3, 16, 16)
        assert (img >= 0).all() and (img < 1).all()

    def test_single_atom_single_pixel(self):
        img = render_density(
            np.array([[0.0, 0.0, 0.0]]), np.zeros(3), 5.0, 8
        )
        for c in range(3):
            assert (img[c] > 0).sum() == 1
            # Centered atom -> middle bin.
            assert img[c, 4, 4] > 0

    def test_out_of_frame_clamped_to_border(self):
        img = render_density(
            np.array([[100.0, 0.0, 0.0]]), np.zeros(3), 5.0, 8
        )
        assert img[0, 7, 4] > 0  # x overflowed -> last x bin

    def test_translation_moves_mass(self):
        a = render_density(np.array([[0.0, 0, 0]]), np.zeros(3), 8.0, 16)
        b = render_density(np.array([[4.0, 0, 0]]), np.zeros(3), 8.0, 16)
        assert not np.array_equal(a, b)

    def test_more_atoms_brighter(self):
        one = render_density(np.zeros((1, 3)), np.zeros(3), 5.0, 4)
        many = render_density(np.zeros((6, 3)), np.zeros(3), 5.0, 4)
        assert many.max() > one.max()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            render_density(np.zeros((1, 3)), np.zeros(3), 5.0, 1)
        with pytest.raises(ValueError):
            render_density(np.zeros((1, 3)), np.zeros(3), 0.0, 8)

    def test_projections_stack(self, rng):
        out = render_projections(
            rng.normal(size=(20, 3)),
            rng.normal(size=(5, 3)),
            np.zeros(3),
            10.0,
            resolution=12,
        )
        assert out.shape == (6, 12, 12)


class TestImageStateEnv:
    @pytest.fixture()
    def img_env(self, small_complex):
        engine = MetadockEngine(
            small_complex, shift_length=0.8, rotation_angle_deg=5.0
        )
        return ImageStateEnv(DockingEnv(engine), resolution=16)

    def test_state_is_flat_image(self, img_env):
        s = img_env.reset()
        assert s.shape == (img_env.state_dim,)
        assert img_env.image_shape == (6, 16, 16)
        assert img_env.state_dim == 6 * 16 * 16

    def test_receptor_channels_static(self, img_env):
        s0 = img_env.reset().reshape(6, 16, 16)
        s1, *_ = img_env.step(0)
        s1 = s1.reshape(6, 16, 16)
        np.testing.assert_array_equal(s0[:3], s1[:3])

    def test_ligand_channels_respond_to_moves(self, img_env):
        s0 = img_env.reset().reshape(6, 16, 16)
        img_env.step(0)
        img_env.step(0)  # two full shifts: guaranteed bin change
        s1 = img_env._image_state().reshape(6, 16, 16)
        assert not np.array_equal(s0[3:], s1[3:])

    def test_reward_and_termination_passthrough(self, img_env):
        img_env.reset()
        _s, r, done, info = img_env.step(5)
        assert r in (-1.0, 0.0, 1.0)
        assert "score" in info

    def test_invalid_resolution(self, small_complex):
        engine = MetadockEngine(small_complex)
        with pytest.raises(ValueError):
            ImageStateEnv(DockingEnv(engine), resolution=1)

    def test_size_independent_of_atom_count(self, small_complex):
        # The whole point of the extension: state dim is fixed by
        # resolution, not molecule size.
        engine = MetadockEngine(small_complex)
        env = ImageStateEnv(DockingEnv(engine), resolution=8)
        assert env.state_dim == 6 * 64
        assert env.state_dim < engine.state_dim()


class TestCnnDqnIntegration:
    def test_trainer_runs_with_cnn_agent(self, small_complex):
        engine = MetadockEngine(
            small_complex, shift_length=0.8, rotation_angle_deg=5.0
        )
        env = ImageStateEnv(DockingEnv(engine), resolution=12)
        net = build_cnn(
            env.image_shape, env.n_actions,
            conv_channels=(4,), hidden=16, rng=0,
        )
        agent = DQNAgent(
            AgentConfig(
                state_dim=env.state_dim,
                n_actions=env.n_actions,
                replay_capacity=256,
                minibatch_size=8,
                initial_exploration_steps=0,
                epsilon_decay=0.01,
                learning_rate=0.001,
                seed=0,
            ),
            network=net,
        )
        history = Trainer(
            env, agent, episodes=2, max_steps_per_episode=15
        ).run()
        assert history.total_steps == 30
        assert agent.learn_steps > 0
        # Target network cloned from the CNN works too.
        agent.sync_target()
