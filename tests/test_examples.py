"""Every example script must run end to end (guards against rot).

Each example is executed in a subprocess with reduced arguments; the
assertion is a clean exit plus a recognizable output marker.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, (
        f"{name} failed:\nstdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "--episodes", "6")
        assert "Greedy deployment" in out

    def test_virtual_screening(self):
        out = run_example(
            "virtual_screening.py", "--ligands", "2", "--budget", "60"
        )
        assert "Screening results" in out

    def test_dqn_vs_montecarlo(self):
        out = run_example("dqn_vs_montecarlo.py", "--budget", "200")
        assert "Winner:" in out

    def test_flexible_ligand(self):
        out = run_example("flexible_ligand.py", "--episodes", "4")
        assert "flexible" in out

    def test_cnn_docking(self):
        out = run_example(
            "cnn_docking.py", "--episodes", "4", "--resolution", "12"
        )
        assert "CNN" in out

    def test_analyze_training(self, tmp_path):
        out_file = tmp_path / "run.json"
        out = run_example(
            "analyze_training.py",
            "--episodes", "6",
            "--out", str(out_file),
        )
        assert "Action usage" in out
        assert out_file.exists()

    def test_blind_docking(self, tmp_path):
        pdb = tmp_path / "blind.pdb"
        out = run_example(
            "blind_docking.py",
            "--spots", "3",
            "--budget", "50",
            "--workers", "1",
            "--out", str(pdb),
        )
        assert "Refining" in out
        assert pdb.exists()

    def test_paper_scale_slice(self):
        out = run_example(
            "paper_scale.py", "--episodes", "1", "--max-steps", "12"
        )
        assert "throughput" in out
        assert "Table 1" in out
