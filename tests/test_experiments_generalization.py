"""Cross-complex generalization experiment."""

import numpy as np
import pytest

from repro.experiments.generalization import run_generalization_experiment


class TestGeneralization:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.config import ci_scale_config

        cfg = ci_scale_config(episodes=6, seed=0, max_steps=25)
        return run_generalization_experiment(
            cfg, n_targets=2, eval_episodes=2
        )

    def test_all_targets_evaluated(self, result):
        assert len(result.outcomes) == 2
        seeds = [o.target_seed for o in result.outcomes]
        assert len(set(seeds)) == 2
        assert all(s != result.source_seed for s in seeds)

    def test_outcomes_finite(self, result):
        for o in result.outcomes:
            assert np.isfinite(o.transfer.mean_best_score)
            assert np.isfinite(o.untrained.mean_best_score)
            assert np.isfinite(o.scratch_best_score)

    def test_scratch_is_a_meaningful_ceiling(self, result):
        # Training directly on the target must at least match zero-shot
        # evaluation-mean transfer on every target (it saw the complex).
        for o in result.outcomes:
            assert o.scratch_best_score >= o.transfer.mean_best_score - 20.0

    def test_summary_table(self, result):
        out = result.summary()
        assert "Zero-shot generalization" in out
        assert "scratch-trained" in out

    def test_invalid_targets(self, tiny_run_config):
        with pytest.raises(ValueError):
            run_generalization_experiment(tiny_run_config, n_targets=0)
