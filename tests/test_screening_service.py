"""Tests for the sharded, resumable, policy-capable screening service."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.chem.builders import build_complex
from repro.metadock.library import generate_library
from repro.metadock.screening import (
    ScreeningHit,
    _engine_for,
    enrichment_factor,
    screen_library,
    screen_ligand,
)
from repro.nn.checkpoints import (
    CheckpointMismatchError,
    mlp_from_arrays,
    network_arrays,
    save_network,
)
from repro.nn.network import build_mlp
from repro.runtime.checkpoint import Checkpoint
from repro.runtime.loop import RunInterrupted, RuntimeContext
from repro.screening import (
    PolicyLoadError,
    ScreeningConfig,
    greedy_rollout,
    load_policy,
    plan_shards,
    ranking_key,
    run_screening,
)
from repro.utils.rng import RngFactory
from tests.conftest import SMALL_COMPLEX_CFG


@pytest.fixture(scope="module")
def library():
    return generate_library(SMALL_COMPLEX_CFG, 5, seed=7)


@pytest.fixture(scope="module")
def built(small_complex):
    return small_complex


# -- shard planning ---------------------------------------------------------
def test_plan_partitions_library_exactly():
    plan = plan_shards(11, 4, seed=3)
    assert [s.shard_id for s in plan] == [0, 1, 2]
    flat = [i for s in plan for i in s.indices]
    assert flat == list(range(11))
    assert all(len(s.indices) == len(s.seeds) for s in plan)


def test_plan_seeds_match_serial_screener_stream():
    # The invariant behind sharded==serial bit-equality: one draw over
    # the whole library from the very stream the serial screener used.
    for shard_size in (1, 2, 7, 100):
        plan = plan_shards(7, shard_size, seed=42)
        assert [x for s in plan for x in s.seeds] == RngFactory(42).seeds(
            "screening", 7
        )


def test_plan_validation():
    with pytest.raises(ValueError):
        plan_shards(-1, 4)
    with pytest.raises(ValueError):
        plan_shards(4, 0)
    assert len(plan_shards(0, 4)) == 0


def test_ranking_key_breaks_ties_by_library_order():
    records = [
        {"best_score": 1.0, "library_index": 3},
        {"best_score": 2.0, "library_index": 2},
        {"best_score": 1.0, "library_index": 0},
    ]
    ranked = sorted(records, key=ranking_key)
    assert [r["library_index"] for r in ranked] == [2, 0, 3]


# -- sharded == serial ------------------------------------------------------
def _legacy_serial(built, library, *, strategy, budget, seed):
    """The pre-driver screen_library algorithm, verbatim."""
    seeds = RngFactory(seed).seeds("screening", len(library))
    hits = [
        screen_ligand(built, e, strategy=strategy, budget=budget, seed=s)
        for e, s in zip(library, seeds)
    ]
    hits.sort(key=lambda h: h.best_score, reverse=True)
    return hits


def test_sharded_matches_serial_across_workers_and_shard_sizes(
    built, library
):
    expected = _legacy_serial(
        built, library, strategy="random", budget=40, seed=3
    )
    for workers in (1, 2):
        for shard_size in (1, 2, 5):
            result = run_screening(
                built,
                library,
                ScreeningConfig(
                    strategy="random",
                    budget=40,
                    seed=3,
                    workers=workers,
                    shard_size=shard_size,
                ),
            )
            assert result.hits == expected, (workers, shard_size)


def test_screen_library_default_matches_legacy(built, library):
    hits = screen_library(
        built, library, strategy="random", budget=40, seed=3
    )
    assert hits == _legacy_serial(
        built, library, strategy="random", budget=40, seed=3
    )


def test_screen_library_top_k_and_workers(built, library):
    full = screen_library(
        built, library, strategy="random", budget=40, seed=3
    )
    top = screen_library(
        built,
        library,
        strategy="random",
        budget=40,
        seed=3,
        top_k=2,
        workers=2,
        shard_size=2,
    )
    assert top == full[:2]


def test_unknown_strategy_raises(built, library):
    with pytest.raises(ValueError):
        screen_library(built, library, strategy="quantum", budget=10)


def test_shared_cells_scoring_matches_per_ligand(built, library):
    # The worker-shared receptor cell list must not change any score.
    for method in ("cutoff", "incremental"):
        shared = run_screening(
            built,
            library[:3],
            ScreeningConfig(
                strategy="random",
                budget=30,
                seed=5,
                shard_size=2,
                scoring_method=method,
            ),
        )
        direct = _legacy_serial(
            built, library[:3], strategy="random", budget=30, seed=5
        )
        # Different scorer, so only compare against itself serially:
        serial = run_screening(
            built,
            library[:3],
            ScreeningConfig(
                strategy="random",
                budget=30,
                seed=5,
                shard_size=1,
                scoring_method=method,
            ),
        )
        assert shared.hits == serial.hits
        assert len(direct) == len(shared.hits)


# -- library validation -----------------------------------------------------
def test_generate_library_rejects_inverted_bounds():
    with pytest.raises(ValueError, match="max_atoms"):
        generate_library(
            SMALL_COMPLEX_CFG, 2, min_atoms=12, max_atoms=8
        )


def test_generate_library_rejects_nonpositive_bounds():
    with pytest.raises(ValueError, match="min_atoms"):
        generate_library(SMALL_COMPLEX_CFG, 2, min_atoms=0)
    with pytest.raises(ValueError, match="max_atoms"):
        generate_library(SMALL_COMPLEX_CFG, 2, max_atoms=-3)


def test_generate_library_explicit_bounds_respected():
    entries = generate_library(
        SMALL_COMPLEX_CFG, 4, seed=1, min_atoms=8, max_atoms=9
    )
    assert all(8 <= e.n_atoms <= 9 for e in entries)
    # Equal bounds are a valid single-size library.
    entries = generate_library(
        SMALL_COMPLEX_CFG, 2, seed=1, min_atoms=8, max_atoms=8
    )
    assert all(e.n_atoms == 8 for e in entries)


# -- enrichment_factor edge cases ------------------------------------------
def _hits(scores):
    return [
        ScreeningHit(
            compound_id=f"C{i}",
            best_score=float(s),
            evaluations=1,
            n_atoms=10,
        )
        for i, s in enumerate(scores)
    ]


def test_enrichment_top_fraction_one_is_unity():
    hits = _hits([5.0, 4.0, 3.0, 2.0])
    actives = {"C0", "C3"}
    assert enrichment_factor(hits, actives, top_fraction=1.0) == 1.0


def test_enrichment_with_score_ties():
    hits = _hits([5.0, 5.0, 5.0, 1.0])
    # Top 50% (2 hits) of 4; both actives tie at the top score.
    assert enrichment_factor(
        hits, {"C0", "C1"}, top_fraction=0.5
    ) == pytest.approx(2.0)


def test_enrichment_invalid_fraction():
    hits = _hits([1.0])
    for bad in (0.0, -0.1, 1.5):
        with pytest.raises(ValueError):
            enrichment_factor(hits, {"C0"}, top_fraction=bad)


def test_enrichment_empty_inputs():
    assert enrichment_factor([], {"C0"}) == 0.0
    assert enrichment_factor(_hits([1.0]), set()) == 0.0


# -- resume semantics -------------------------------------------------------
class _InterruptAfterFirstMemo:
    """Guard that requests a stop once results.json has been written --
    i.e. deterministically after the first shard completes."""

    def __init__(self, results_path):
        self.results_path = results_path

    @property
    def stop_requested(self) -> bool:
        return self.results_path.exists()


def test_interrupted_then_resumed_matches_uninterrupted(
    built, library, tmp_path
):
    config = ScreeningConfig(
        strategy="random", budget=40, seed=3, shard_size=1
    )
    baseline = run_screening(built, library, config)

    run_dir = tmp_path / "run"
    guard = _InterruptAfterFirstMemo(run_dir / "results.json")
    runtime = RuntimeContext(run_dir, guard=guard)
    with pytest.raises(RunInterrupted):
        run_screening(built, library, config, runtime=runtime)
    memoized = json.loads((run_dir / "results.json").read_text())
    assert 0 < len(memoized) < len(library)

    resumed = run_screening(
        built, library, config, runtime=RuntimeContext(run_dir)
    )
    assert resumed.hits == baseline.hits
    assert resumed.shards_cached == len(memoized)
    ranking = json.loads((run_dir / "screen_ranking.json").read_text())
    assert [h["compound_id"] for h in ranking["hits"]] == [
        h.compound_id for h in baseline.hits
    ]
    assert [h["best_score"] for h in ranking["hits"]] == [
        h.best_score for h in baseline.hits
    ]


def test_completed_run_is_fully_cached(built, library, tmp_path):
    config = ScreeningConfig(
        strategy="random", budget=30, seed=9, shard_size=2
    )
    first = run_screening(
        built, library, config, runtime=RuntimeContext(tmp_path)
    )
    again = run_screening(
        built, library, config, runtime=RuntimeContext(tmp_path)
    )
    assert again.shards_cached == again.n_shards
    assert again.hits == first.hits


def test_hits_jsonl_streams_per_ligand(built, library, tmp_path):
    config = ScreeningConfig(strategy="random", budget=30, seed=9)
    run_screening(
        built, library, config, runtime=RuntimeContext(tmp_path)
    )
    lines = [
        json.loads(line)
        for line in (tmp_path / "hits.jsonl").read_text().splitlines()
    ]
    assert len(lines) == len(library)
    assert {rec["library_index"] for rec in lines} == set(
        range(len(library))
    )


# -- policy mode ------------------------------------------------------------
@pytest.fixture(scope="module")
def policy_net(built, library):
    engines = [_engine_for(built, e.ligand) for e in library]
    input_dim = max(e.state_dim() for e in engines)
    return build_mlp(
        input_dim, [24], engines[0].n_actions, rng=5, dtype=np.float32
    )


def test_mlp_from_arrays_roundtrip(policy_net):
    rebuilt = mlp_from_arrays(network_arrays(policy_net))
    for a, b in zip(policy_net.params(), rebuilt.params()):
        assert np.array_equal(a, b)
        assert a.dtype == b.dtype


def test_mlp_from_arrays_rejects_malformed():
    arrays = network_arrays(build_mlp(4, [3], 2, rng=0))
    with pytest.raises(CheckpointMismatchError):
        mlp_from_arrays({k: v for k, v in arrays.items() if k != "p1"})
    with pytest.raises(CheckpointMismatchError):
        mlp_from_arrays({})
    bad = dict(arrays)
    bad["p2"] = np.zeros((9, 2))  # fan-in does not chain from p0's 3
    with pytest.raises(CheckpointMismatchError):
        mlp_from_arrays(bad)


def test_load_policy_bare_npz(policy_net, tmp_path):
    path = tmp_path / "net.npz"
    save_network(policy_net, path)
    bundle = load_policy(path)
    assert bundle.input_dim == policy_net.params()[0].shape[0]
    net = bundle.build_network()
    for a, b in zip(policy_net.params(), net.params()):
        assert np.array_equal(a, b)


def test_load_policy_runtime_checkpoint_and_run_dir(
    policy_net, tmp_path
):
    run_dir = tmp_path / "train-run"
    (run_dir / "checkpoints").mkdir(parents=True)
    Checkpoint(
        state={"agent": {"q_net": network_arrays(policy_net)}},
        meta={"phase": "figure4"},
    ).write(run_dir / "checkpoints" / "figure4.npz")
    (run_dir / "manifest.json").write_text(
        json.dumps({"config": {"activation": "tanh"}})
    )
    # Direct .npz flavour.
    direct = load_policy(run_dir / "checkpoints" / "figure4.npz")
    assert direct.activation == "relu"
    # Run-dir flavour picks up the manifest activation.
    bundle = load_policy(run_dir)
    assert bundle.activation == "tanh"
    for a, b in zip(
        policy_net.params(), direct.build_network().params()
    ):
        assert np.array_equal(a, b)


def test_load_policy_missing_and_unusable(tmp_path):
    with pytest.raises(PolicyLoadError):
        load_policy(tmp_path / "nope.npz")
    with pytest.raises(PolicyLoadError):
        load_policy(tmp_path)  # no checkpoints anywhere
    bad = tmp_path / "bad.npz"
    np.savez(bad, unrelated=np.zeros(3))
    with pytest.raises(PolicyLoadError):
        load_policy(bad)


def test_policy_screen_deterministic_across_workers(
    built, library, policy_net, tmp_path
):
    path = tmp_path / "net.npz"
    save_network(policy_net, path)
    base = ScreeningConfig(
        strategy="policy",
        policy_path=str(path),
        shard_size=2,
        policy_max_steps=8,
    )
    r1 = run_screening(built, library, base)
    r2 = run_screening(
        built,
        library,
        ScreeningConfig(
            strategy="policy",
            policy_path=str(path),
            shard_size=2,
            policy_max_steps=8,
            workers=2,
        ),
    )
    assert r1.hits == r2.hits
    assert len(r1.hits) == len(library)


def test_greedy_rollout_batches_and_pads(built, library, policy_net):
    engines = [_engine_for(built, e.ligand) for e in library[:3]]
    results, stats = greedy_rollout(
        policy_net, engines, max_steps=6
    )
    assert len(results) == 3
    # One forward pass per step while any ligand is active.
    assert 1 <= stats.forward_passes <= 6
    # One grouped scoring call per step plus the initial-pose pass.
    assert stats.score_batch_calls == stats.forward_passes + 1
    assert all(r.evaluations >= 1 for r in results)
    # Determinism of the batched rollout.
    engines2 = [_engine_for(built, e.ligand) for e in library[:3]]
    results2, _ = greedy_rollout(policy_net, engines2, max_steps=6)
    assert results == results2


@pytest.mark.parametrize("mode", ["raw", "descriptor"])
def test_greedy_rollout_matches_sequential_loop(
    built, library, policy_net, mode
):
    """The batched hot path reproduces the per-ligand reference loop
    bit for bit (scores, steps, termination) in both state modes."""
    from repro.screening.policy import _greedy_rollout_loop

    engines = [_engine_for(built, e.ligand) for e in library[:4]]
    ref_engines = [_engine_for(built, e.ligand) for e in library[:4]]
    net = policy_net
    if mode == "descriptor":
        from repro.env.observation import make_codec

        dim = max(
            make_codec("descriptor", e).spec.dim for e in engines
        )
        net = build_mlp(dim, [16], engines[0].n_actions, rng=7)
    results, stats = greedy_rollout(
        net, engines, max_steps=8, observation_mode=mode
    )
    ref_results, ref_passes = _greedy_rollout_loop(
        net, ref_engines, max_steps=8, observation_mode=mode
    )
    assert results == ref_results
    assert stats.forward_passes == ref_passes


def test_greedy_rollout_matches_loop_field_scoring(
    built, library, policy_net
):
    """Field-scored engines share one FieldMaps and go through the
    fused group kernel; the rollout still matches the reference loop."""
    from repro.scoring.field import FieldMaps
    from repro.screening.policy import _greedy_rollout_loop

    maps = FieldMaps(built.receptor)
    engines = [
        _engine_for(
            built,
            e.ligand,
            scoring_method="field",
            scoring_kwargs={"cells": maps},
        )
        for e in library[:3]
    ]
    ref_maps = FieldMaps(built.receptor)
    ref_engines = [
        _engine_for(
            built,
            e.ligand,
            scoring_method="field",
            scoring_kwargs={"cells": ref_maps},
        )
        for e in library[:3]
    ]
    results, _ = greedy_rollout(policy_net, engines, max_steps=6)
    ref_results, _ = _greedy_rollout_loop(
        policy_net, ref_engines, max_steps=6
    )
    assert results == ref_results


def test_greedy_rollout_rejects_oversized_state(built, library):
    engines = [_engine_for(built, library[0].ligand)]
    tiny = build_mlp(8, [4], engines[0].n_actions, rng=0)
    with pytest.raises(PolicyLoadError, match="exceeds"):
        greedy_rollout(tiny, engines, max_steps=2)


def test_config_validation():
    with pytest.raises(ValueError, match="policy_path"):
        ScreeningConfig(strategy="policy")
    with pytest.raises(ValueError, match="unknown strategy"):
        ScreeningConfig(strategy="quantum")
    with pytest.raises(ValueError):
        ScreeningConfig(workers=0)
    with pytest.raises(ValueError):
        ScreeningConfig(shard_size=0)
    a = ScreeningConfig(seed=1).fingerprint(10)
    b = ScreeningConfig(seed=2).fingerprint(10)
    assert a != b
    assert a == ScreeningConfig(seed=1).fingerprint(10)


# -- CLI integration --------------------------------------------------------
def test_cli_screen_and_inspect(tmp_path, capsys):
    from repro.cli import main

    run_dir = tmp_path / "screen-run"
    code = main(
        [
            "screen",
            "--ligands",
            "4",
            "--budget",
            "25",
            "--strategy",
            "random",
            "--shard-size",
            "2",
            "--top-k",
            "3",
            "--log-dir",
            str(run_dir),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Virtual screening (random)" in out
    assert (run_dir / "screen_ranking.json").exists()
    assert (run_dir / "hits.jsonl").exists()

    code = main(["inspect", str(run_dir)])
    assert code == 0
    out = capsys.readouterr().out
    assert "Screening" in out
    assert "Top hits" in out
    assert "ligands/min" in out


def test_cli_screen_policy_without_checkpoint_errors(capsys):
    from repro.cli import main

    code = main(["screen", "--strategy", "policy", "--ligands", "2"])
    assert code == 2
    assert "policy_path" in capsys.readouterr().err


def test_cli_screen_policy_mode_end_to_end(tmp_path, capsys):
    """Policy screening through the CLI with a checkpoint sized for the
    CLI's own complex (the library is capped at the base ligand size,
    so every compound's state fits)."""
    from repro.chem.builders import build_complex
    from repro.cli import main
    from repro.config import ci_scale_config

    cfg = ci_scale_config(episodes=1, seed=0).complex
    built = build_complex(cfg)
    engine = _engine_for(built, built.ligand_crystal)
    net = build_mlp(
        engine.state_dim(), [16], engine.n_actions, rng=3,
        dtype=np.float32,
    )
    ckpt = tmp_path / "policy.npz"
    save_network(net, ckpt)
    code = main(
        [
            "screen",
            "--ligands",
            "3",
            "--strategy",
            "policy",
            "--policy",
            str(ckpt),
            "--policy-max-steps",
            "5",
        ]
    )
    assert code == 0
    assert "Virtual screening (policy)" in capsys.readouterr().out
