"""Parallel pose evaluation and library/screening drivers."""

import numpy as np
import pytest

from repro.metadock.library import generate_library
from repro.metadock.parallel import (
    default_workers,
    map_over_seeds,
    score_coords_parallel,
)
from repro.metadock.screening import (
    enrichment_factor,
    ScreeningHit,
    screen_library,
)
from repro.scoring.composite import score_pose_batch

from tests.conftest import SMALL_COMPLEX_CFG


def _square(x: int) -> int:
    return x * x


class TestScoreCoordsParallel:
    def test_matches_serial(self, small_complex, rng):
        lig = small_complex.ligand_crystal
        batch = np.stack(
            [lig.coords + rng.normal(scale=0.5, size=(lig.n_atoms, 3))
             for _ in range(20)]
        )
        serial = score_pose_batch(small_complex.receptor, lig, batch)
        par = score_coords_parallel(
            small_complex.receptor, lig, batch, n_workers=2, chunk=5
        )
        np.testing.assert_allclose(par, serial, rtol=1e-10)

    def test_small_batch_stays_in_process(self, small_complex):
        lig = small_complex.ligand_crystal
        batch = np.stack([lig.coords])
        out = score_coords_parallel(
            small_complex.receptor, lig, batch, n_workers=4, chunk=256
        )
        assert out.shape == (1,)

    def test_single_worker_path(self, small_complex):
        lig = small_complex.ligand_crystal
        batch = np.stack([lig.coords, lig.coords + 1.0])
        out = score_coords_parallel(
            small_complex.receptor, lig, batch, n_workers=1
        )
        assert out.shape == (2,)

    def test_bad_shape_rejected(self, small_complex):
        with pytest.raises(ValueError):
            score_coords_parallel(
                small_complex.receptor,
                small_complex.ligand_crystal,
                np.zeros((4, 3)),
            )

    def test_default_workers_positive(self):
        assert 1 <= default_workers() <= 8


class TestMapOverSeeds:
    def test_serial_path(self):
        assert map_over_seeds(_square, [1, 2, 3], n_workers=1) == [1, 4, 9]

    def test_parallel_path_order_preserved(self):
        out = map_over_seeds(_square, list(range(8)), n_workers=2)
        assert out == [x * x for x in range(8)]

    def test_empty(self):
        assert map_over_seeds(_square, [], n_workers=4) == []


class TestLibrary:
    def test_count_and_ids(self):
        lib = generate_library(SMALL_COMPLEX_CFG, 5, seed=1)
        assert len(lib) == 5
        assert [e.compound_id for e in lib] == [
            f"LIG{k:05d}" for k in range(5)
        ]

    def test_size_bounds(self):
        lib = generate_library(
            SMALL_COMPLEX_CFG, 6, seed=2, min_atoms=6, max_atoms=9
        )
        assert all(6 <= e.n_atoms <= 9 for e in lib)

    def test_deterministic(self):
        a = generate_library(SMALL_COMPLEX_CFG, 3, seed=3)
        b = generate_library(SMALL_COMPLEX_CFG, 3, seed=3)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.ligand.coords, y.ligand.coords)

    def test_diverse(self):
        lib = generate_library(SMALL_COMPLEX_CFG, 4, seed=4)
        coords = [e.ligand.coords for e in lib]
        shapes_or_values_differ = any(
            coords[0].shape != c.shape or not np.array_equal(coords[0], c)
            for c in coords[1:]
        )
        assert shapes_or_values_differ

    def test_zero_ligands(self):
        assert generate_library(SMALL_COMPLEX_CFG, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            generate_library(SMALL_COMPLEX_CFG, -1)


class TestScreening:
    def test_ranked_descending(self, small_complex):
        lib = generate_library(SMALL_COMPLEX_CFG, 3, seed=5)
        hits = screen_library(
            small_complex, lib, strategy="random", budget=60, seed=0
        )
        scores = [h.best_score for h in hits]
        assert scores == sorted(scores, reverse=True)

    def test_top_k(self, small_complex):
        lib = generate_library(SMALL_COMPLEX_CFG, 4, seed=6)
        hits = screen_library(
            small_complex, lib, strategy="random", budget=50, seed=0, top_k=2
        )
        assert len(hits) == 2

    def test_montecarlo_strategy(self, small_complex):
        lib = generate_library(SMALL_COMPLEX_CFG, 2, seed=7)
        hits = screen_library(
            small_complex, lib, strategy="montecarlo", budget=60, seed=0
        )
        assert len(hits) == 2

    def test_unknown_strategy_rejected(self, small_complex):
        lib = generate_library(SMALL_COMPLEX_CFG, 1, seed=8)
        with pytest.raises(ValueError):
            screen_library(small_complex, lib, strategy="quantum", budget=10)

    def test_deterministic(self, small_complex):
        lib = generate_library(SMALL_COMPLEX_CFG, 2, seed=9)
        a = screen_library(small_complex, lib, strategy="random", budget=50, seed=3)
        b = screen_library(small_complex, lib, strategy="random", budget=50, seed=3)
        assert [h.best_score for h in a] == [h.best_score for h in b]


class TestEnrichment:
    def _hits(self, scores):
        return [
            ScreeningHit(f"L{i}", s, 10, 10) for i, s in enumerate(scores)
        ]

    def test_perfect_enrichment(self):
        hits = self._hits([10, 9, 1, 0.5, 0.1, 0.0, -1, -2, -3, -4])
        ef = enrichment_factor(hits, {"L0", "L1"}, top_fraction=0.2)
        # both actives in top 20% of 10 -> EF = 2 / (0.2 * 2) = 5
        assert ef == pytest.approx(5.0)

    def test_no_actives(self):
        assert enrichment_factor(self._hits([1, 2]), set()) == 0.0

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            enrichment_factor(self._hits([1]), {"L0"}, top_fraction=0.0)

    def test_zero_when_actives_at_bottom(self):
        hits = self._hits([10, 9, 8, 7, 6, 5, 4, 3, 2, 1])
        assert enrichment_factor(hits, {"L9"}, top_fraction=0.1) == 0.0
