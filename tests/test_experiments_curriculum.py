"""Multi-complex curriculum experiment."""

import numpy as np
import pytest

from repro.config import ci_scale_config
from repro.experiments.curriculum import run_curriculum_experiment


class TestCurriculum:
    @pytest.fixture(scope="class")
    def result(self):
        cfg = ci_scale_config(episodes=8, seed=0, max_steps=25)
        return run_curriculum_experiment(
            cfg, n_train_complexes=2, total_steps=200, eval_episodes=2
        )

    def test_structure(self, result):
        assert result.n_train_complexes == 2
        assert result.total_steps == 200
        for ev in (
            result.curriculum_eval,
            result.single_eval,
            result.untrained_eval,
        ):
            assert np.isfinite(ev.mean_best_score)

    def test_summary(self, result):
        out = result.summary()
        assert "curriculum" in out
        assert "untrained" in out

    def test_needs_two_complexes(self):
        cfg = ci_scale_config(episodes=4, seed=0, max_steps=10)
        with pytest.raises(ValueError):
            run_curriculum_experiment(cfg, n_train_complexes=1)
