"""PDB / PDBQT / XYZ readers and writers."""

import io

import numpy as np
import pytest

from repro.chem.molecule import Molecule
from repro.chem.pdb import read_pdb, read_pdbqt, to_pdb_string, write_pdb
from repro.chem.xyz import read_xyz, to_xyz_string, write_xyz


def sample() -> Molecule:
    return Molecule.from_symbols(
        ["C", "O", "H"],
        [[0.0, 0.0, 0.0], [1.2, 0.0, 0.0], [-0.6, 0.9, 0.1]],
        bonds=[[0, 1], [0, 2]],
        name="smpl",
    )


class TestPdbRoundTrip:
    def test_atoms_survive(self):
        text = to_pdb_string(sample())
        back = read_pdb(io.StringIO(text))
        assert back.symbols == ["C", "O", "H"]
        np.testing.assert_allclose(back.coords, sample().coords, atol=1e-3)

    def test_bonds_survive_via_conect(self):
        back = read_pdb(io.StringIO(to_pdb_string(sample())))
        assert back.n_bonds == 2
        assert {tuple(b) for b in back.bonds} == {(0, 1), (0, 2)}

    def test_assign_fills_parameters(self):
        back = read_pdb(io.StringIO(to_pdb_string(sample())))
        assert (back.sigma > 0).all()
        assert np.isfinite(back.charges).all()

    def test_assign_false_keeps_typical(self):
        back = read_pdb(io.StringIO(to_pdb_string(sample())), assign=False)
        assert back.n_atoms == 3

    def test_header_becomes_name(self):
        # idCode occupies columns 63-66 (0-based slice 62:66).
        header = "HEADER    PROTEIN".ljust(62) + "2BSM"
        text = header + "\n" + to_pdb_string(sample())
        back = read_pdb(io.StringIO(text))
        assert back.name == "2BSM"

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            read_pdb(io.StringIO("END\n"))

    def test_malformed_atom_line_rejected(self):
        bad = "ATOM      1  C   MOL A   1    garbage\n"
        with pytest.raises(ValueError):
            read_pdb(io.StringIO(bad))

    def test_file_path_roundtrip(self, tmp_path):
        p = tmp_path / "mol.pdb"
        write_pdb(sample(), p)
        back = read_pdb(p)
        assert back.n_atoms == 3

    def test_hetatm_flag(self):
        buf = io.StringIO()
        write_pdb(sample(), buf, hetatm=True)
        assert "HETATM" in buf.getvalue()


class TestPdbqt:
    def test_reads_charges(self):
        lines = [
            "ATOM      1  N   LIG A   1       0.000   0.000   0.000  1.00  0.00     0.450 N",
            "ATOM      2  C   LIG A   1       1.500   0.000   0.000  1.00  0.00    -0.120 C",
        ]
        mol = read_pdbqt(io.StringIO("\n".join(lines) + "\n"))
        assert mol.symbols == ["N", "C"]
        np.testing.assert_allclose(mol.charges, [0.45, -0.12])

    def test_aromatic_carbon_type(self):
        line = (
            "ATOM      1  C1  LIG A   1       0.000   0.000   0.000"
            "  1.00  0.00     0.010 A"
        )
        mol = read_pdbqt(io.StringIO(line + "\n"))
        assert mol.symbols == ["C"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            read_pdbqt(io.StringIO("REMARK nothing\n"))


class TestXyz:
    def test_roundtrip(self):
        text = to_xyz_string(sample())
        back = read_xyz(io.StringIO(text))
        assert back.symbols == ["C", "O", "H"]
        np.testing.assert_allclose(back.coords, sample().coords, atol=1e-7)
        assert back.name == "smpl"

    def test_bond_perception_on_read(self):
        back = read_xyz(io.StringIO(to_xyz_string(sample())))
        assert back.n_bonds >= 2

    def test_perceive_bonds_off(self):
        back = read_xyz(
            io.StringIO(to_xyz_string(sample())), perceive_bonds=False
        )
        assert back.n_bonds == 0

    def test_file_path_roundtrip(self, tmp_path):
        p = tmp_path / "mol.xyz"
        write_xyz(sample(), p)
        assert read_xyz(p).n_atoms == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            read_xyz(io.StringIO(""))

    def test_bad_count_rejected(self):
        with pytest.raises(ValueError):
            read_xyz(io.StringIO("nope\ncomment\n"))

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            read_xyz(io.StringIO("3\ncomment\nC 0 0 0\n"))

    def test_malformed_atom_line_rejected(self):
        with pytest.raises(ValueError):
            read_xyz(io.StringIO("1\nc\nC 0 0\n"))


class TestCrossFormat:
    def test_pdb_and_xyz_agree(self):
        mol = sample()
        via_pdb = read_pdb(io.StringIO(to_pdb_string(mol)), assign=False)
        via_xyz = read_xyz(
            io.StringIO(to_xyz_string(mol)), perceive_bonds=False, assign=False
        )
        assert via_pdb.symbols == via_xyz.symbols
        np.testing.assert_allclose(via_pdb.coords, via_xyz.coords, atol=1e-3)
