"""Span tracer: nesting, attribution, and the Timer compatibility shim."""

import time

import pytest

from repro.telemetry.spans import SpanTracer
from repro.utils.timers import Timer


class TestSpanTracer:
    def test_nested_paths(self):
        tr = SpanTracer()
        with tr.span("train"):
            with tr.span("act"):
                pass
            with tr.span("env-step"):
                with tr.span("score"):
                    pass
        assert sorted(s.path for s in tr.spans()) == [
            "train",
            "train/act",
            "train/env-step",
            "train/env-step/score",
        ]

    def test_counts_accumulate_per_path(self):
        tr = SpanTracer()
        for _ in range(3):
            with tr.span("a"):
                with tr.span("b"):
                    pass
        assert tr.get("a").count == 3
        assert tr.get("a/b").count == 3
        assert tr.get("a/b").parent == "a"
        assert tr.get("a/b").depth == 1

    def test_same_name_under_different_parents(self):
        tr = SpanTracer()
        with tr.span("x"):
            with tr.span("work"):
                pass
        with tr.span("y"):
            with tr.span("work"):
                pass
        assert tr.get("x/work").count == 1
        assert tr.get("y/work").count == 1
        # The flat (Timer) view aggregates across parents.
        assert tr.counts_by_name()["work"] == 2

    def test_rejects_separator_in_name(self):
        tr = SpanTracer()
        with pytest.raises(ValueError):
            with tr.span("a/b"):
                pass

    def test_exception_still_records_and_pops(self):
        tr = SpanTracer()
        with pytest.raises(RuntimeError):
            with tr.span("outer"):
                raise RuntimeError("boom")
        assert tr.get("outer").count == 1
        # The stack unwound: the next span is a root, not a child.
        with tr.span("next"):
            pass
        assert tr.get("next").parent is None

    def test_self_time_excludes_children(self):
        tr = SpanTracer()
        with tr.span("parent"):
            with tr.span("child"):
                time.sleep(0.01)
        parent = tr.get("parent")
        assert parent.total >= tr.get("parent/child").total
        assert tr.self_time("parent") == pytest.approx(
            parent.total - tr.get("parent/child").total
        )
        assert tr.self_time("missing") == 0.0

    def test_as_rows_json_safe(self):
        tr = SpanTracer()
        with tr.span("a"):
            pass
        (row,) = tr.as_rows()
        assert row["path"] == "a"
        assert row["parent"] is None
        assert row["count"] == 1
        assert isinstance(row["total_seconds"], float)
        assert isinstance(row["self_seconds"], float)

    def test_reports(self):
        tr = SpanTracer()
        assert tr.report() == "(no timed sections)"
        assert tr.flat_report() == "(no timed sections)"
        with tr.span("train"):
            with tr.span("act"):
                pass
        tree = tr.report()
        assert "train" in tree and "  act" in tree
        flat = tr.flat_report()
        assert "total=" in flat and "calls=" in flat


class TestTimerShim:
    def test_section_records(self):
        t = Timer()
        with t.section("load"):
            pass
        with t.section("load"):
            pass
        assert t.counts["load"] == 2
        assert t.total("load") >= 0.0
        assert t.mean("load") == pytest.approx(t.total("load") / 2)

    def test_nested_sections_aggregate_by_leaf_name(self):
        t = Timer()
        with t.section("outer"):
            with t.section("inner"):
                pass
        assert set(t.totals) == {"outer", "inner"}
        assert "outer" in t.report()

    def test_wraps_existing_tracer(self):
        tr = SpanTracer()
        t = Timer(tr)
        with t.section("shared"):
            pass
        assert tr.get("shared").count == 1

    def test_empty_report(self):
        assert Timer().report() == "(no timed sections)"
