"""Vector-env semantics shared by the sync and async backends.

Both :class:`~repro.env.vectorized.SyncVectorEnv` and
:class:`~repro.env.async_vectorized.AsyncVectorEnv` must satisfy the
:class:`repro.env.protocol.VectorEnv` contract identically: same
shapes, same auto-reset/terminal-state semantics, same validation
errors, and -- given the same seeds -- the *same transition stream*.
The async-only robustness paths (worker crash -> respawn, telemetry
metrics) are exercised at the bottom.
"""

import multiprocessing as mp
import time

import numpy as np
import pytest

from repro.env.async_vectorized import (
    QUEUE_WAIT_METRIC,
    RESTARTS_METRIC,
    AsyncVectorEnv,
)
from repro.env.factory import make_vector_env, resolve_backend
from repro.env.protocol import VectorEnv, coerce_actions
from repro.env.vectorized import SyncVectorEnv
from repro.rl.vector_trainer import VectorTrainer
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import SpanTracer

from tests.test_rl_trainer import CountingEnv, tiny_agent

BACKENDS = ["sync", "async"]

fork_required = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="async backend needs a fork-capable platform for env thunks",
)


class SeededWalkEnv:
    """Deterministic-per-seed random walk; drives the equivalence test.

    Transitions depend only on the env's own RNG stream and the action
    sequence, so two backends fed the same seeds and actions must
    produce bit-identical states/rewards/dones.
    """

    def __init__(self, seed, horizon=7, state_dim=3):
        self.seed = seed
        self.horizon = horizon
        self.state_dim = state_dim
        self.n_actions = 4
        self.rng = None
        self.t = 0
        self.state = np.zeros(state_dim)

    def reset(self):
        self.rng = np.random.default_rng(self.seed)
        self.t = 0
        self.state = self.rng.normal(size=self.state_dim)
        return self.state.copy()

    def step(self, action):
        self.t += 1
        self.state = self.state + self.rng.normal(size=self.state_dim) + action
        reward = float(self.state.sum())
        done = self.t >= self.horizon
        return self.state.copy(), reward, done, {"score": reward}


def walk_fns(n, seeds=None):
    seeds = seeds or list(range(n))
    return [(lambda s=s: SeededWalkEnv(s)) for s in seeds]


def venv_for(backend, env_fns, **kw):
    if backend == "async":
        kw.setdefault("step_timeout", 20.0)
    return make_vector_env(env_fns=env_fns, backend=backend, **kw)


@fork_required
@pytest.mark.parametrize("backend", BACKENDS)
class TestSharedContract:
    def test_reset_and_step_shapes(self, backend):
        with venv_for(backend, walk_fns(3)) as venv:
            assert isinstance(venv, VectorEnv)
            states = venv.reset()
            assert states.shape == (3, 3)
            assert states.dtype == np.float64
            s, r, d, infos = venv.step([0, 1, 2])
            assert s.shape == (3, 3)
            assert r.shape == (3,)
            assert d.shape == (3,) and d.dtype == bool
            assert isinstance(infos, tuple) and len(infos) == 3

    def test_auto_reset_returns_fresh_state(self, backend):
        with venv_for(
            backend, [lambda: CountingEnv(horizon=2)]
        ) as venv:
            venv.reset()
            venv.step([0])
            states, _r, dones, infos = venv.step([0])
            assert dones[0]
            # Fresh post-reset state in the batch; the true terminal
            # next-state rides in the info dict.
            np.testing.assert_array_equal(states[0], [0.0, 0.0])
            assert infos[0]["terminal_state"][1] == 2.0

    def test_action_validation(self, backend):
        with venv_for(backend, walk_fns(2)) as venv:
            venv.reset()
            with pytest.raises(ValueError):
                venv.step([0])
            with pytest.raises(ValueError):
                venv.step(np.zeros((2, 2), dtype=int))
            with pytest.raises(TypeError):
                venv.step(np.array([0.0, 1.0]))

    def test_returned_states_not_aliased(self, backend):
        # A second step must not mutate arrays handed out earlier
        # (the async backend returns copies of its shared block).
        with venv_for(backend, walk_fns(2)) as venv:
            venv.reset()
            s1, r1, _d, _i = venv.step([1, 1])
            s1_snap, r1_snap = s1.copy(), r1.copy()
            venv.step([2, 2])
            np.testing.assert_array_equal(s1, s1_snap)
            np.testing.assert_array_equal(r1, r1_snap)

    def test_mismatched_envs_rejected(self, backend):
        fns = [
            lambda: SeededWalkEnv(0, state_dim=3),
            lambda: SeededWalkEnv(1, state_dim=5),
        ]
        with pytest.raises(ValueError, match="disagree"):
            venv_for(backend, fns)

    def test_trainer_runs_on_backend(self, backend):
        with venv_for(
            backend, [lambda: CountingEnv(horizon=6)] * 2
        ) as venv:
            stats = VectorTrainer(venv, tiny_agent()).run(total_steps=24)
            assert stats.total_steps == 24
            assert stats.episodes_completed == 4
            assert stats.worker_restarts == 0


@fork_required
class TestSyncAsyncEquivalence:
    def test_identical_transition_streams(self):
        seeds = [11, 22, 33]
        actions = np.random.default_rng(0).integers(4, size=(20, 3))
        streams = {}
        for backend in BACKENDS:
            with venv_for(backend, walk_fns(3, seeds)) as venv:
                rows = [venv.reset()]
                rewards, dones = [], []
                for a in actions:
                    s, r, d, _ = venv.step(a)
                    rows.append(s)
                    rewards.append(r)
                    dones.append(d)
                streams[backend] = (
                    np.stack(rows), np.stack(rewards), np.stack(dones),
                )
        for sync_part, async_part in zip(streams["sync"], streams["async"]):
            np.testing.assert_array_equal(sync_part, async_part)

    def test_terminal_states_match(self):
        results = {}
        for backend in BACKENDS:
            with venv_for(
                backend, [lambda: SeededWalkEnv(7, horizon=3)]
            ) as venv:
                venv.reset()
                terminals = []
                for _ in range(7):
                    _s, _r, d, infos = venv.step([1])
                    if d[0]:
                        terminals.append(infos[0]["terminal_state"])
                results[backend] = np.stack(terminals)
        np.testing.assert_array_equal(results["sync"], results["async"])


class CrashyEnv(CountingEnv):
    """Counting env that hard-kills its own process on action 9."""

    def __init__(self):
        super().__init__(horizon=100)
        self.n_actions = 10

    def step(self, action):
        if action == 9:
            import os
            import signal

            os.kill(os.getpid(), signal.SIGKILL)
        return super().step(action)


class HangingEnv(CountingEnv):
    """Counting env that sleeps past any reasonable timeout on action 9."""

    def __init__(self):
        super().__init__(horizon=100)
        self.n_actions = 10

    def step(self, action):
        if action == 9:
            time.sleep(60.0)
        return super().step(action)


@fork_required
class TestAsyncRobustness:
    def test_killed_worker_respawns(self):
        registry = MetricsRegistry()
        with make_vector_env(
            env_fns=[CrashyEnv, CrashyEnv],
            backend="async",
            metrics=registry,
            step_timeout=20.0,
        ) as venv:
            venv.reset()
            venv.step([0, 0])
            # Worker 0 dies mid-step; the run must carry on.
            states, rewards, dones, infos = venv.step([9, 0])
            assert venv.worker_restarts == 1
            assert dones[0] and not dones[1]
            assert rewards[0] == 0.0
            assert infos[0]["worker_restarted"]
            # The discarded episode's terminal state is the pre-crash
            # state; the returned row is the respawned env's reset.
            np.testing.assert_array_equal(
                infos[0]["terminal_state"], [1.0, 1.0]
            )
            np.testing.assert_array_equal(states[0], [0.0, 0.0])
            # And the respawned worker keeps stepping.
            s, _r, d, _i = venv.step([0, 0])
            assert not d.any()
            np.testing.assert_array_equal(s[0], [1.0, 1.0])
        assert registry.counter(RESTARTS_METRIC).value == 1

    def test_hung_worker_times_out_and_respawns(self):
        with make_vector_env(
            env_fns=[HangingEnv],
            backend="async",
            step_timeout=1.0,
        ) as venv:
            venv.reset()
            _s, _r, dones, infos = venv.step([9])
            assert dones[0]
            assert infos[0]["worker_restarted"]
            assert "hung" in infos[0]["worker_crash_reason"]
            assert venv.worker_restarts == 1

    def test_restart_budget_enforced(self):
        from repro.env.async_vectorized import WorkerCrashError

        venv = make_vector_env(
            env_fns=[CrashyEnv],
            backend="async",
            max_restarts=1,
            step_timeout=20.0,
        )
        try:
            venv.reset()
            venv.step([9])  # first crash: within budget
            with pytest.raises(WorkerCrashError):
                venv.step([9])  # second crash: budget exhausted
        finally:
            venv.close()

    def test_trainer_survives_worker_crash(self):
        # Epsilon-greedy will eventually hit the kill action; the run
        # must finish and report the respawn in its stats.
        registry = MetricsRegistry()
        with make_vector_env(
            env_fns=[CrashyEnv] * 2,
            backend="async",
            metrics=registry,
            step_timeout=20.0,
        ) as venv:
            agent = tiny_agent(n_actions=10)
            stats = VectorTrainer(venv, agent).run(total_steps=60)
            assert stats.total_steps == 60
            assert stats.worker_restarts >= 1
            assert (
                registry.counter(RESTARTS_METRIC).value
                == stats.worker_restarts
            )

    def test_telemetry_metrics_and_spans(self):
        registry = MetricsRegistry()
        tracer = SpanTracer()
        with make_vector_env(
            env_fns=walk_fns(2),
            backend="async",
            metrics=registry,
            tracer=tracer,
            step_timeout=20.0,
        ) as venv:
            venv.reset()
            venv.step([0, 1])
        assert RESTARTS_METRIC in registry  # registered even when 0
        assert registry.counter(RESTARTS_METRIC).value == 0
        assert registry.gauge(QUEUE_WAIT_METRIC).value >= 0.0
        assert tracer.get("vector-step") is not None
        assert tracer.get("vector-step/queue-wait").count == 1

    def test_env_exception_propagates(self):
        with make_vector_env(
            env_fns=[lambda: SeededWalkEnv(0)],
            backend="async",
            step_timeout=20.0,
        ) as venv:
            # step before reset: the worker env raises; that is a bug,
            # not an infrastructure crash, so it must surface.
            with pytest.raises(RuntimeError, match="worker 0 raised"):
                venv.step([0])

    def test_close_reaps_workers_and_is_idempotent(self):
        venv = make_vector_env(env_fns=walk_fns(2), backend="async")
        procs = list(venv._procs)
        venv.reset()
        venv.close()
        venv.close()
        assert all(not p.is_alive() for p in procs)
        with pytest.raises(RuntimeError, match="closed"):
            venv.reset()


class TestFactory:
    def test_backend_resolution(self, monkeypatch):
        assert resolve_backend("sync", 4) == "sync"
        assert resolve_backend("async", 1) == "async"
        with pytest.raises(ValueError):
            resolve_backend("thread", 2)
        import repro.env.factory as factory_mod

        monkeypatch.setattr(factory_mod.os, "cpu_count", lambda: 8)
        assert resolve_backend("auto", 4) in {"sync", "async"}
        monkeypatch.setattr(factory_mod.os, "cpu_count", lambda: 1)
        assert resolve_backend("auto", 4) == "sync"
        monkeypatch.setattr(factory_mod.os, "cpu_count", lambda: 8)
        assert resolve_backend("auto", 1) == "sync"

    def test_auto_uses_async_on_multicore_fork(self, monkeypatch):
        import repro.env.factory as factory_mod

        monkeypatch.setattr(factory_mod.os, "cpu_count", lambda: 8)
        if "fork" in mp.get_all_start_methods():
            assert resolve_backend("auto", 4) == "async"

    def test_requires_config_or_env_fns(self):
        with pytest.raises(ValueError, match="config or env_fns"):
            make_vector_env()

    def test_backend_options_rejected_for_sync(self):
        with pytest.raises(ValueError, match="async"):
            make_vector_env(
                env_fns=walk_fns(1), backend="sync", step_timeout=5.0
            )

    def test_builds_from_config(self):
        from repro.config import ci_scale_config

        cfg = ci_scale_config(episodes=2, seed=0, max_steps=5)
        venv = make_vector_env(cfg, n_envs=2, backend="sync")
        try:
            assert venv.n_envs == 2
            states = venv.reset()
            assert states.shape == (2, venv.state_dim)
            _s, r, _d, infos = venv.step([0, 1])
            assert np.isfinite(infos[0]["score"])
        finally:
            venv.close()

    def test_builts_length_checked(self):
        from repro.config import ci_scale_config

        cfg = ci_scale_config(episodes=2, seed=0, max_steps=5)
        with pytest.raises(ValueError, match="built complexes"):
            make_vector_env(cfg, n_envs=3, builts=[object(), object()])

    def test_coerce_actions_contract(self):
        out = coerce_actions([1, 2, 3], 3)
        assert out.dtype == np.int64
        with pytest.raises(ValueError):
            coerce_actions([[1]], 1)
        with pytest.raises(TypeError):
            coerce_actions(np.array([True]), 1)
