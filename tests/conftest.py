"""Shared fixtures: one small deterministic complex reused across tests.

Building a complex costs ~100ms at test scale; session scope keeps the
suite fast.  Tests must not mutate the fixture molecules -- ones that
need mutation copy first.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chem.builders import BuiltComplex, build_complex
from repro.config import ComplexConfig, ci_scale_config
from repro.env.docking_env import DockingEnv, make_env
from repro.metadock.engine import MetadockEngine


SMALL_COMPLEX_CFG = ComplexConfig(
    receptor_atoms=120,
    ligand_atoms=10,
    receptor_radius=9.0,
    pocket_depth=3.5,
    pocket_aperture=0.55,
    initial_offset=7.0,
    rotatable_bonds=2,
    seed=2018,
)


@pytest.fixture(scope="session")
def small_complex() -> BuiltComplex:
    """A 120+10 atom complex shared by the whole suite (do not mutate)."""
    return build_complex(SMALL_COMPLEX_CFG)


@pytest.fixture()
def engine(small_complex) -> MetadockEngine:
    """A fresh rigid engine over the shared complex."""
    return MetadockEngine(
        small_complex, shift_length=0.8, rotation_angle_deg=5.0
    )


@pytest.fixture()
def flex_engine(small_complex) -> MetadockEngine:
    """A fresh flexible engine (2 torsions) over the shared complex."""
    return MetadockEngine(
        small_complex,
        shift_length=0.8,
        rotation_angle_deg=5.0,
        n_torsions=2,
    )


@pytest.fixture()
def env(engine) -> DockingEnv:
    """A docking environment over the fresh engine."""
    return DockingEnv(engine)


@pytest.fixture()
def tiny_run_config():
    """A config for very fast end-to-end training tests."""
    return ci_scale_config(episodes=6, seed=0, max_steps=25)


@pytest.fixture()
def rng() -> np.random.Generator:
    """Per-test deterministic generator."""
    return np.random.default_rng(12345)
