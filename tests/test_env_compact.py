"""Compact-state emission end-to-end: engine -> env -> vector -> agent.

The compact hot loop (engine ``dynamic_state`` double-buffering,
``DockingEnv(compact_states=True)``, float32 shared-memory vector
blocks, and the compact agent wiring in the experiment drivers) must
produce exactly the trajectories of the classic dense float64 pipeline
-- the receptor block it factors out is constant, and every cast
involved is the same float64->float32 rounding.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np
import pytest

from repro.config import DQNDockingConfig, ci_scale_config
from repro.env.docking_env import DockingEnv, make_env
from repro.env.factory import make_vector_env
from repro.env.flexible_env import FlexibleDockingEnv
from repro.experiments.figure4 import (
    build_agent,
    build_agent_for_env,
    run_figure4_experiment,
)
from repro.metadock.engine import MetadockEngine


@pytest.fixture()
def compact_env(small_complex):
    engine = MetadockEngine(
        small_complex, shift_length=0.8, rotation_angle_deg=5.0
    )
    return DockingEnv(engine, compact_states=True)


class TestEngineEmission:
    def test_dynamic_state_matches_state_vector_tail(self, engine):
        engine.reset(observe=False)
        full = engine.state_vector()
        tail = engine.dynamic_state()
        assert tail.dtype == np.float32
        p = engine.static_state().shape[0]
        np.testing.assert_array_equal(
            tail, full[p:].astype(np.float32)
        )
        np.testing.assert_array_equal(
            engine.static_state(), full[:p].astype(np.float32)
        )

    def test_static_state_is_read_only(self, engine):
        with pytest.raises(ValueError):
            engine.static_state()[0] = 1.0

    def test_double_buffering_holds_one_step(self, engine):
        engine.reset(observe=False)
        t0 = engine.dynamic_state()
        engine.apply_action(0)
        t1 = engine.dynamic_state()
        # Two distinct buffers: t0 still valid alongside t1...
        assert t0 is not t1
        held0, held1 = t0.copy(), t1.copy()
        engine.apply_action(0)
        t2 = engine.dynamic_state()
        # ...but the third emission recycles the first buffer.
        assert t2 is t0
        np.testing.assert_array_equal(t1, held1)
        assert not np.array_equal(t0, held0)


class TestCompactEnv:
    def test_emits_float32_tails(self, compact_env):
        state = compact_env.reset()
        assert state.dtype == np.float32
        assert state.shape == (compact_env.engine.dynamic_dim(),)
        assert compact_env.state_dtype == np.float32
        assert (
            compact_env.full_state_dim
            == compact_env.engine.state_dim()
        )
        assert compact_env.static_state() is not None

    def test_dense_env_contract_unchanged(self, env):
        state = env.reset()
        assert state.dtype == np.float64
        assert env.state_dtype == np.float64
        assert env.static_state() is None
        assert env.full_state_dim == env.state_dim

    def test_full_state_is_prefix_plus_tail(self, compact_env):
        tail = compact_env.reset()
        full = compact_env.full_state()
        p = compact_env.static_state().shape[0]
        np.testing.assert_array_equal(
            full[p:].astype(np.float32), tail
        )

    def test_same_trajectory_as_dense(self, small_complex):
        def envs():
            dense = DockingEnv(
                MetadockEngine(
                    small_complex, shift_length=0.8,
                    rotation_angle_deg=5.0,
                )
            )
            compact = DockingEnv(
                MetadockEngine(
                    small_complex, shift_length=0.8,
                    rotation_angle_deg=5.0,
                ),
                compact_states=True,
            )
            return dense, compact

        dense, compact = envs()
        sd = dense.reset()
        sc = compact.reset()
        p = compact.static_state().shape[0]
        np.testing.assert_array_equal(
            sd[p:].astype(np.float32), sc
        )
        for action in [0, 2, 5, 1, 1, 3]:
            sd, rd, dd, infod = dense.step(action)
            sc, rc, dc, infoc = compact.step(action)
            assert rd == rc and dd == dc
            assert infod["score"] == infoc["score"]
            np.testing.assert_array_equal(
                sd[p:].astype(np.float32), sc
            )

    def test_flexible_env_compact(self, small_complex):
        env = FlexibleDockingEnv(
            small_complex, n_torsions=2, compact_states=True
        )
        state = env.reset()
        assert state.dtype == np.float32
        assert env.n_actions == 12 + 2 * 2


class TestConfigGating:
    def test_distributional_compact_rejected(self):
        with pytest.raises(ValueError, match="compact_states"):
            DQNDockingConfig(
                variant="distributional", compact_states=True
            )

    def test_build_agent_rejects_distributional_static(self):
        cfg = ci_scale_config(episodes=2)
        cfg = cfg.replace(variant="distributional")
        with pytest.raises(ValueError, match="distributional"):
            build_agent(
                cfg, 60, 12,
                static_state=np.zeros(30, dtype=np.float32),
            )

    def test_factory_rejects_multi_complex_compact(self, small_complex):
        from repro.chem.builders import build_complex
        from tests.conftest import SMALL_COMPLEX_CFG
        import dataclasses

        other = build_complex(
            dataclasses.replace(SMALL_COMPLEX_CFG, seed=77)
        )
        cfg = ci_scale_config(episodes=2, compact_states=True)
        with pytest.raises(ValueError, match="single shared complex"):
            make_vector_env(
                cfg, builts=[small_complex, other], n_envs=2
            )

    def test_factory_allows_shared_complex_compact(self, small_complex):
        cfg = ci_scale_config(episodes=2, compact_states=True)
        venv = make_vector_env(cfg, builts=[small_complex] * 2, n_envs=2)
        try:
            assert venv.state_dtype == np.float32
        finally:
            venv.close()


class TestVectorBackends:
    def test_sync_carries_float32(self, small_complex):
        cfg = ci_scale_config(episodes=2, compact_states=True)
        venv = make_vector_env(cfg, builts=[small_complex] * 2, n_envs=2)
        try:
            states = venv.reset()
            assert states.dtype == np.float32
            ns, rewards, dones, infos = venv.step([0, 1])
            assert ns.dtype == np.float32
        finally:
            venv.close()

    def test_sync_terminal_state_is_snapshot(self, small_complex):
        # Drive one env to termination; the surfaced terminal_state must
        # be a private copy, not the engine's reused emission buffer.
        cfg = ci_scale_config(episodes=2, compact_states=True)
        venv = make_vector_env(cfg, builts=[small_complex], n_envs=1)
        try:
            venv.reset()
            for _ in range(400):
                states, _, dones, infos = venv.step([0])
                if dones[0]:
                    term = infos[0]["terminal_state"]
                    env = venv.envs[0]
                    assert term is not env.engine._dyn_bufs[0]
                    assert term is not env.engine._dyn_bufs[1]
                    held = term.copy()
                    venv.step([1])
                    np.testing.assert_array_equal(term, held)
                    break
            else:
                pytest.skip("episode never terminated in 400 steps")
        finally:
            venv.close()

    def test_async_matches_sync_compact(self, small_complex):
        if "fork" not in mp.get_all_start_methods():
            pytest.skip("async backend needs fork")
        cfg = ci_scale_config(episodes=2, compact_states=True)
        actions = [[a % 12, (a + 3) % 12] for a in range(25)]
        streams = []
        for backend in ("sync", "async"):
            venv = make_vector_env(
                cfg, builts=[small_complex] * 2, n_envs=2,
                backend=backend,
            )
            try:
                assert venv.state_dtype == np.float32
                states = [venv.reset()]
                rewards, dones = [], []
                for a in actions:
                    s, r, d, _ = venv.step(a)
                    states.append(s.copy())
                    rewards.append(r.copy())
                    dones.append(d.copy())
            finally:
                venv.close()
            streams.append((states, rewards, dones))
        (s1, r1, d1), (s2, r2, d2) = streams
        np.testing.assert_array_equal(np.asarray(s1), np.asarray(s2))
        np.testing.assert_array_equal(np.asarray(r1), np.asarray(r2))
        np.testing.assert_array_equal(np.asarray(d1), np.asarray(d2))


class TestEndToEnd:
    def test_figure4_compact_equals_dense(self):
        # The tentpole invariant: compact emission + compact replay +
        # float32 nets produce the *identical* training run (both modes
        # feed the nets the same float32 bits under the same seeds).
        dense_cfg = ci_scale_config(episodes=4, seed=3, max_steps=20)
        compact_cfg = dense_cfg.replace(compact_states=True)
        dense = run_figure4_experiment(dense_cfg)
        compact = run_figure4_experiment(compact_cfg)
        assert compact.agent.static_state is not None
        assert compact.agent.replay.is_compact
        assert (
            dense.history.total_steps == compact.history.total_steps
        )
        np.testing.assert_array_equal(dense.series, compact.series)
        assert dense.history.best_score == compact.history.best_score

    def test_build_agent_for_env_compact(self, compact_env):
        cfg = ci_scale_config(episodes=2, compact_states=True)
        agent = build_agent_for_env(cfg, compact_env)
        assert agent.config.state_dim == compact_env.full_state_dim
        assert agent.replay.is_compact
        tail = compact_env.reset()
        action, q = agent.act(tail, 0)
        assert q.shape[-1] == compact_env.n_actions
        assert 0 <= action < compact_env.n_actions

    def test_vector_trainer_compact(self, small_complex):
        from repro.rl.vector_trainer import VectorTrainer

        cfg = ci_scale_config(
            episodes=2, compact_states=True, max_steps=10
        )
        venv = make_vector_env(cfg, builts=[small_complex] * 2, n_envs=2)
        try:
            agent = build_agent(
                cfg,
                venv.envs[0].full_state_dim,
                venv.n_actions,
                static_state=venv.envs[0].static_state(),
            )
            stats = VectorTrainer(
                venv, agent,
                learning_start=8, target_update_steps=20,
            ).run(40)
            assert stats.total_steps >= 40
            assert len(agent.replay) > 0
        finally:
            venv.close()
