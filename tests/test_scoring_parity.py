"""Parity: vectorized Eq. 1 == the sequential Algorithm 1 reference.

This is the correctness anchor for the whole scoring stack: the pure
Python triple loop is transliterated from the paper's pseudocode, and the
vectorized implementation must match it to floating-point noise.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem.molecule import Molecule
from repro.scoring.composite import interaction_score, score_pose_batch
from repro.scoring.lennard_jones import lennard_jones_energy
from repro.scoring.pairwise import pairwise_distances
from repro.scoring.reference import (
    sequential_lj_energy,
    sequential_score_algorithm1,
)


def make_pair(seed: int, n_a: int, n_b: int):
    rng = np.random.default_rng(seed)
    a = Molecule.from_symbols(
        list(rng.choice(["C", "N", "O", "H", "S"], size=n_a)),
        rng.normal(size=(n_a, 3)) * 5.0,
        bonds=[[i, i + 1] for i in range(n_a - 1)],
    )
    b = Molecule.from_symbols(
        list(rng.choice(["C", "N", "O", "H"], size=n_b)),
        rng.normal(size=(n_b, 3)) * 3.0 + np.array([9.0, 0, 0]),
        bonds=[[i, i + 1] for i in range(n_b - 1)],
    )
    return a, b


class TestLjParity:
    @given(st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_sequential_vs_vectorized(self, seed):
        a, b = make_pair(seed, 6, 4)
        d = pairwise_distances(a.coords, b.coords)
        vec = lennard_jones_energy(a.sigma, a.epsilon, b.sigma, b.epsilon, d)
        seq = sequential_lj_energy(a, b)
        assert vec == pytest.approx(seq, rel=1e-10)


class TestFullParity:
    @given(st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_random_pairs(self, seed):
        a, b = make_pair(seed, 7, 5)
        vec = interaction_score(a, b)
        seq = sequential_score_algorithm1(a, b)[0]
        assert vec == pytest.approx(seq, rel=1e-9)

    def test_on_built_complex(self, small_complex):
        vec = interaction_score(
            small_complex.receptor, small_complex.ligand_crystal
        )
        seq = sequential_score_algorithm1(
            small_complex.receptor, small_complex.ligand_crystal
        )[0]
        assert vec == pytest.approx(seq, rel=1e-9)

    def test_clashing_pose_parity(self):
        # Even the 1e20-scale clash penalties must agree.
        a, b = make_pair(3, 6, 4)
        clash = b.with_coords(
            np.tile(a.coords[0], (b.n_atoms, 1))
            + np.random.default_rng(0).normal(scale=0.01, size=(b.n_atoms, 3))
        )
        vec = interaction_score(a, clash)
        seq = sequential_score_algorithm1(a, clash)[0]
        assert vec == pytest.approx(seq, rel=1e-9)
        assert vec < -1e9

    def test_multiconformation_matches_batch(self):
        a, b = make_pair(5, 8, 4)
        confs = [b.coords + np.array([k * 1.0, 0, 0]) for k in range(3)]
        seq = sequential_score_algorithm1(a, b, confs)
        vec = score_pose_batch(a, b, np.stack(confs))
        np.testing.assert_allclose(vec, seq, rtol=1e-9)

    def test_default_conformation_is_current_pose(self):
        a, b = make_pair(6, 5, 3)
        assert sequential_score_algorithm1(a, b)[0] == pytest.approx(
            sequential_score_algorithm1(a, b, [b.coords])[0]
        )
