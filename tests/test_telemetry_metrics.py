"""Metrics registry: counters, gauges, streaming histogram quantiles."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SNAPSHOT_COLUMNS,
)


class TestCounter:
    def test_accumulates(self):
        c = Counter("steps")
        c.inc()
        c.inc(4)
        assert c.value == 5.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("steps").inc(-1)


class TestGauge:
    def test_last_value_wins(self):
        g = Gauge("epsilon")
        g.set(1.0)
        g.set(0.05)
        assert g.value == 0.05
        assert g.updates == 2

    def test_starts_nan(self):
        assert Gauge("x").value != Gauge("x").value


class TestHistogram:
    def test_moments_exact(self):
        h = Histogram("score")
        values = [3.0, -1.0, 4.0, 1.0, 5.0]
        for v in values:
            h.observe(v)
        assert h.count == 5
        assert h.mean == pytest.approx(np.mean(values))
        assert h.std == pytest.approx(np.std(values))
        assert h.min == -1.0
        assert h.max == 5.0

    def test_quantiles_match_numpy_below_reservoir(self):
        rng = np.random.default_rng(7)
        values = rng.normal(size=300)
        h = Histogram("q", reservoir_size=512)
        for v in values:
            h.observe(v)
        for q in (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(
                float(np.quantile(values, q)), abs=1e-12
            )

    def test_quantile_vector_form(self):
        h = Histogram("q")
        for v in range(101):
            h.observe(float(v))
        got = h.quantile([0.25, 0.5, 0.75])
        np.testing.assert_allclose(got, [25.0, 50.0, 75.0])

    def test_quantile_empty_is_nan(self):
        assert Histogram("q").quantile(0.5) != Histogram("q").quantile(0.5)

    def test_reservoir_overflow_stays_sane(self):
        # 20k uniform draws through a 256-slot reservoir: the median
        # estimate must land well inside the bulk of the distribution.
        rng = np.random.default_rng(0)
        h = Histogram("big", reservoir_size=256)
        for v in rng.uniform(size=20_000):
            h.observe(float(v))
        assert h.count == 20_000
        assert 0.35 < h.quantile(0.5) < 0.65
        assert h.sample().size == 256

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=64))
    def test_moments_any_stream(self, values):
        h = Histogram("any")
        for v in values:
            h.observe(v)
        assert h.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-6)
        assert h.min == min(values)
        assert h.max == max(values)


class TestMetricsRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_conveniences(self):
        reg = MetricsRegistry()
        reg.inc("steps", 3)
        reg.set("eps", 0.5)
        reg.observe("loss", 1.0)
        assert reg.counter("steps").value == 3
        assert reg.gauge("eps").value == 0.5
        assert reg.histogram("loss").count == 1
        assert len(reg) == 3
        assert "steps" in reg and "nope" not in reg

    def test_snapshot_rows_schema(self):
        reg = MetricsRegistry()
        reg.inc("steps")
        reg.set("eps", 0.1)
        for v in (1.0, 2.0, 3.0):
            reg.observe("loss", v)
        rows = reg.snapshot_rows()
        assert [r["name"] for r in rows] == ["eps", "loss", "steps"]
        for row in rows:
            assert set(row) == set(SNAPSHOT_COLUMNS)
        loss = next(r for r in rows if r["name"] == "loss")
        assert loss["kind"] == "histogram"
        assert loss["p50"] == pytest.approx(2.0)

    def test_merge_span_rows(self):
        reg = MetricsRegistry()
        reg.inc("steps")
        rows = reg.merge_span_rows(
            [
                {
                    "path": "train/act",
                    "count": 10,
                    "total_seconds": 0.5,
                    "mean_seconds": 0.05,
                }
            ]
        )
        span = next(r for r in rows if r["kind"] == "span")
        assert span["name"] == "span/train/act"
        assert span["value"] == 0.5
