"""Trajectory analysis tools."""

import numpy as np
import pytest

from repro.analysis.trajectories import (
    TrajectoryReport,
    action_histogram,
    analyze_recorder,
    termination_breakdown,
    visitation_heatmap,
)
from repro.env.wrappers import EpisodeRecorder
from repro.rl.trainer import EpisodeStats, TrainingHistory


def _episode(actions, distances=None):
    distances = distances or [5.0] * len(actions)
    return [
        {
            "action": a,
            "reward": 0.0,
            "score": 1.0,
            "com_distance": d,
        }
        for a, d in zip(actions, distances)
    ]


class TestActionHistogram:
    def test_frequencies(self):
        eps = [_episode([0, 0, 1]), _episode([2])]
        freq = action_histogram(eps, 4)
        np.testing.assert_allclose(freq, [0.5, 0.25, 0.25, 0.0])

    def test_empty(self):
        freq = action_histogram([], 3)
        np.testing.assert_array_equal(freq, 0.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            action_histogram([_episode([7])], 4)

    def test_invalid_n_actions(self):
        with pytest.raises(ValueError):
            action_histogram([], 0)


class TestTerminationBreakdown:
    def test_counts(self):
        h = TrainingHistory()
        for term in ("escape", "escape", "time-limit"):
            h.episodes.append(
                EpisodeStats(0, 1, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, True, term)
            )
        assert termination_breakdown(h) == {"escape": 2, "time-limit": 1}


class TestVisitationHeatmap:
    def test_shape_and_counts(self):
        eps = [_episode([0] * 10, distances=list(np.linspace(3, 12, 10)))]
        heat, (lo, hi) = visitation_heatmap(eps, bins=6)
        assert heat.shape == (6, 10)
        assert heat.sum() == 10
        assert lo == pytest.approx(3.0) and hi == pytest.approx(12.0)

    def test_empty(self):
        heat, rng = visitation_heatmap([])
        assert heat.sum() == 0
        assert rng == (0.0, 0.0)


class TestAnalyzeRecorder:
    def test_end_to_end(self, engine):
        from repro.env.docking_env import DockingEnv
        from repro.rl.trainer import Trainer
        from tests.test_rl_trainer import tiny_agent

        env = EpisodeRecorder(DockingEnv(engine))
        agent = tiny_agent(
            state_dim=env.state_dim, n_actions=env.n_actions
        )
        history = Trainer(
            env, agent, episodes=3, max_steps_per_episode=10
        ).run()
        report = analyze_recorder(
            env, history, action_labels=env.engine.action_labels()
        )
        assert isinstance(report, TrajectoryReport)
        assert report.action_freq.sum() == pytest.approx(1.0)
        assert report.mean_episode_length > 0
        out = report.summary()
        assert "Action usage" in out
        assert "+shift-x" in out

    def test_label_mismatch_rejected(self, engine):
        from repro.env.docking_env import DockingEnv
        from repro.rl.trainer import TrainingHistory

        env = EpisodeRecorder(DockingEnv(engine))
        env.reset()
        env.step(0)
        with pytest.raises(ValueError):
            analyze_recorder(env, TrainingHistory(), action_labels=["x"])
