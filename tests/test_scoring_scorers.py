"""Pluggable scorers: exact/cutoff/grid agreement and engine wiring."""

import numpy as np
import pytest

from repro.metadock.engine import MetadockEngine
from repro.scoring.composite import interaction_score
from repro.scoring.grid import PotentialGrid
from repro.scoring.scorers import (
    GRID_BYTES_METRIC,
    GRID_OOB_METRIC,
    SCORER_REGISTRY,
    SCORING_METHODS,
    CutoffScorer,
    ExactScorer,
    GridScorer,
    make_scorer,
    validate_scoring_kwargs,
)


@pytest.fixture(scope="module")
def pair(small_complex):
    lig = small_complex.ligand_crystal
    template = lig.with_coords(lig.coords - lig.centroid())
    return small_complex.receptor, template, lig.coords


class TestExactScorer:
    def test_matches_interaction_score(self, pair, small_complex):
        rec, template, coords = pair
        scorer = ExactScorer(rec, template)
        assert scorer.score(coords) == pytest.approx(
            interaction_score(small_complex.receptor, small_complex.ligand_crystal)
        )

    def test_batch_matches_single(self, pair, rng):
        rec, template, coords = pair
        scorer = ExactScorer(rec, template)
        batch = coords[None] + rng.normal(scale=1.0, size=(4, 1, 3))
        out = scorer.score_batch(batch)
        for k in range(4):
            assert out[k] == pytest.approx(scorer.score(batch[k]), rel=1e-9)


class TestCutoffScorer:
    def test_converges_to_exact(self, pair):
        rec, template, coords = pair
        exact = ExactScorer(rec, template).score(coords)
        errors = []
        for cutoff in (6.0, 12.0, 24.0):
            approx = CutoffScorer(rec, template, cutoff=cutoff).score(coords)
            errors.append(abs(approx - exact))
        assert errors[-1] <= errors[0]
        assert errors[-1] < 0.05 * max(abs(exact), 1.0)

    def test_huge_unshifted_cutoff_is_exact(self, pair):
        rec, template, coords = pair
        exact = ExactScorer(rec, template).score(coords)
        full = CutoffScorer(
            rec, template, cutoff=1000.0, shifted=False
        ).score(coords)
        assert full == pytest.approx(exact, rel=1e-9)

    def test_shift_vanishes_with_cutoff(self, pair):
        rec, template, coords = pair
        exact = ExactScorer(rec, template).score(coords)
        shifted = CutoffScorer(rec, template, cutoff=1e6).score(coords)
        assert shifted == pytest.approx(exact, rel=1e-4)

    def test_far_pose_scores_zero(self, pair):
        rec, template, coords = pair
        scorer = CutoffScorer(rec, template, cutoff=8.0)
        assert scorer.score(coords + 500.0) == 0.0

    def test_batch_matches_single(self, pair, rng):
        rec, template, coords = pair
        scorer = CutoffScorer(rec, template, cutoff=10.0)
        batch = coords[None] + rng.normal(scale=1.0, size=(3, 1, 3))
        out = scorer.score_batch(batch)
        for k in range(3):
            assert out[k] == pytest.approx(scorer.score(batch[k]))

    def test_invalid_cutoff(self, pair):
        rec, template, _ = pair
        with pytest.raises(ValueError):
            CutoffScorer(rec, template, cutoff=0.0)

    def test_clash_still_catastrophic(self, pair):
        rec, template, _coords = pair
        scorer = CutoffScorer(rec, template, cutoff=10.0)
        clash = np.tile(rec.coords[0], (template.n_atoms, 1))
        assert scorer.score(clash) < -1e6


class TestGridScorer:
    def test_rough_agreement(self, pair):
        rec, template, coords = pair
        exact = ExactScorer(rec, template).score(coords)
        approx = GridScorer(rec, template, spacing=0.8).score(coords)
        assert approx == pytest.approx(exact, rel=0.5)

    def test_batch(self, pair):
        rec, template, coords = pair
        scorer = GridScorer(rec, template, spacing=1.5)
        out = scorer.score_batch(np.stack([coords, coords + 1.0]))
        assert out.shape == (2,)

    def test_lazy_build(self, pair):
        rec, template, coords = pair
        scorer = GridScorer(rec, template, spacing=1.5)
        assert scorer._grid is None
        scorer.score(coords)
        assert scorer._grid is not None

    def test_shared_cells_bit_identical(self, pair):
        rec, template, coords = pair
        grid = PotentialGrid(rec, spacing=1.5, padding=6.0)
        own = GridScorer(rec, template, spacing=1.5)
        shared = GridScorer(rec, template, spacing=1.5, cells=grid)
        assert shared.grid is grid
        assert shared.score(coords) == own.score(coords)
        np.testing.assert_array_equal(
            shared.score_batch(coords[None]), own.score_batch(coords[None])
        )

    def test_cells_type_validated(self, pair):
        rec, template, _ = pair
        with pytest.raises(TypeError):
            GridScorer(rec, template, cells=object())
        with pytest.raises(ValueError):
            GridScorer(rec, template, spacing=0.0)

    def test_telemetry_parity_with_engine(self, small_complex):
        # Engine property setters forward to any scorer exposing
        # tracer/metrics hooks -- GridScorer now has both, like
        # cutoff/incremental.
        from repro.telemetry.metrics import MetricsRegistry
        from repro.telemetry.spans import SpanTracer

        eng = MetadockEngine(
            small_complex,
            scoring_method="grid",
            scoring_kwargs={"spacing": 1.5},
        )
        reg, tr = MetricsRegistry(), SpanTracer()
        eng.metrics = reg
        eng.tracer = tr
        assert eng.scorer.metrics is reg and eng.scorer.tracer is tr
        eng.reset()
        assert reg.get(GRID_BYTES_METRIC).value == float(
            eng.scorer.grid.nbytes()
        )
        assert "grid-build" in str(tr.report())

    def test_metrics_attached_after_build(self, pair):
        from repro.telemetry.metrics import MetricsRegistry

        rec, template, coords = pair
        scorer = GridScorer(rec, template, spacing=1.5)
        scorer.score(coords)
        reg = MetricsRegistry()
        scorer.metrics = reg
        assert reg.get(GRID_BYTES_METRIC).value == float(
            scorer.grid.nbytes()
        )


class TestGridSatellites:
    """dtype option, out-of-box accounting, cached weight vectors."""

    def test_float32_grid_halves_memory(self, pair):
        rec, template, coords = pair
        g64 = PotentialGrid(rec, spacing=1.5)
        g32 = PotentialGrid(rec, spacing=1.5, dtype="float32")
        assert g32.phi.dtype == np.float32
        assert g32.nbytes() * 2 == g64.nbytes()
        # Interpolation arithmetic stays float64; only storage rounds.
        s64 = g64.score(template, coords)
        s32 = g32.score(template, coords)
        assert s32 == pytest.approx(s64, rel=1e-4)

    def test_invalid_dtype(self, pair):
        rec, template, _ = pair
        with pytest.raises(ValueError, match="dtype"):
            PotentialGrid(rec, spacing=1.5, dtype="float16")
        with pytest.raises(ValueError, match="dtype"):
            GridScorer(rec, template, dtype="half").grid

    def test_scorer_dtype_threads_to_grid(self, pair):
        rec, template, _ = pair
        scorer = make_scorer(
            "grid", rec, template, spacing=1.5, dtype="float32"
        )
        assert scorer.grid.phi.dtype == np.float32

    def test_oob_points_counted(self, pair):
        rec, template, coords = pair
        grid = PotentialGrid(rec, spacing=1.5)
        assert grid.count_out_of_box(coords) == 0
        grid.score(template, coords)
        assert grid.oob_points == 0
        grid.score(template, coords + 500.0)  # every atom out of box
        assert grid.oob_points == template.n_atoms
        mixed = coords.copy()
        mixed[0] += 500.0
        grid.score(template, mixed)
        assert grid.oob_points == template.n_atoms + 1

    def test_oob_gauge_published(self, pair):
        from repro.telemetry.metrics import MetricsRegistry

        rec, template, coords = pair
        scorer = GridScorer(rec, template, spacing=1.5)
        scorer.metrics = MetricsRegistry()
        scorer.score(coords + 500.0)
        assert scorer.metrics.get(GRID_OOB_METRIC).value == float(
            template.n_atoms
        )

    def test_cached_weights_bitwise(self, pair, rng):
        # GridScorer precomputes (w12, w6) once; passing them must not
        # change a single float vs recomputing per call.
        rec, template, coords = pair
        grid = PotentialGrid(rec, spacing=1.5)
        scorer = GridScorer(rec, template, spacing=1.5)
        w12, w6 = scorer._weights
        np.testing.assert_array_equal(
            w12, 4.0 * np.sqrt(template.epsilon) * template.sigma**6
        )
        np.testing.assert_array_equal(
            w6, 4.0 * np.sqrt(template.epsilon) * template.sigma**3
        )
        for _ in range(3):
            pose = coords + rng.normal(scale=1.0, size=coords.shape)
            assert grid.score(template, pose) == grid.score(
                template, pose, weights=(w12, w6)
            )
        batch = coords[None] + rng.normal(scale=1.0, size=(3, 1, 3))
        np.testing.assert_array_equal(
            grid.score_batch(template, batch),
            grid.score_batch(template, batch, weights=(w12, w6)),
        )


class TestScorerRegistry:
    def test_methods_in_sync_with_config_literal(self):
        # config.py validates scoring_method against a literal set to
        # avoid an import cycle; this pins the two in sync.
        assert SCORING_METHODS == (
            "exact", "cutoff", "grid", "incremental", "field",
        )
        assert set(SCORER_REGISTRY) == set(SCORING_METHODS)

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown scoring method"):
            validate_scoring_kwargs("quantum", {})

    def test_unknown_kwarg_lists_valid_names(self):
        with pytest.raises(ValueError, match="cutoff"):
            validate_scoring_kwargs("cutoff", {"cutof": 9.0})

    def test_type_mismatch(self):
        with pytest.raises(ValueError, match="must be int/float"):
            validate_scoring_kwargs("incremental", {"skin": "thick"})
        # bool is an int subclass but not a valid numeric kwarg value.
        with pytest.raises(ValueError, match="got bool"):
            validate_scoring_kwargs("cutoff", {"cutoff": True})

    def test_runtime_only_kwarg(self):
        with pytest.raises(ValueError, match="runtime-only"):
            validate_scoring_kwargs("cutoff", {"cells": None})
        # make_scorer's path allows it.
        validate_scoring_kwargs(
            "cutoff", {"cells": None}, allow_runtime=True
        )

    def test_valid_kwargs_pass(self):
        validate_scoring_kwargs("exact", {})
        validate_scoring_kwargs(
            "incremental",
            {"cutoff": 12.0, "skin": 3, "shifted": True, "cell_size": None},
        )
        validate_scoring_kwargs("grid", {"spacing": 0.8, "padding": 4.0})

    def test_config_rejects_bad_kwargs_at_construction(self):
        from repro.config import ci_scale_config

        with pytest.raises(ValueError, match="accepts no kwarg"):
            ci_scale_config(
                4, scoring_method="cutoff", scoring_kwargs={"cutof": 9.0}
            )
        with pytest.raises(ValueError, match="runtime-only"):
            ci_scale_config(
                4, scoring_method="cutoff", scoring_kwargs={"cells": None}
            )

    def test_make_scorer_validates(self, pair):
        rec, template, _ = pair
        with pytest.raises(ValueError, match="accepts no kwarg"):
            make_scorer("cutoff", rec, template, cuttoff=9.0)


class TestFactoryAndEngine:
    def test_factory(self, pair):
        rec, template, _ = pair
        assert isinstance(make_scorer("exact", rec, template), ExactScorer)
        assert isinstance(
            make_scorer("cutoff", rec, template, cutoff=9.0), CutoffScorer
        )
        assert isinstance(
            make_scorer("grid", rec, template, spacing=2.0), GridScorer
        )
        with pytest.raises(ValueError):
            make_scorer("quantum", rec, template)

    def test_engine_cutoff_mode(self, small_complex):
        exact_eng = MetadockEngine(small_complex)
        cut_eng = MetadockEngine(
            small_complex,
            scoring_method="cutoff",
            scoring_kwargs={"cutoff": 1000.0, "shifted": False},
        )
        exact_eng.reset()
        cut_eng.reset()
        assert cut_eng.score() == pytest.approx(exact_eng.score(), rel=1e-9)

    def test_engine_grid_mode_runs(self, small_complex):
        eng = MetadockEngine(
            small_complex,
            scoring_method="grid",
            scoring_kwargs={"spacing": 1.5},
        )
        obs = eng.reset()
        assert np.isfinite(obs.score)

    def test_engine_scorer_used_for_batches(self, small_complex):
        eng = MetadockEngine(
            small_complex,
            scoring_method="cutoff",
            scoring_kwargs={"cutoff": 12.0},
        )
        eng.reset()
        poses = [eng.pose, eng.pose.translated([1.0, 0, 0])]
        batch = eng.score_poses(poses)
        singles = [eng.score_pose(p) for p in poses]
        np.testing.assert_allclose(batch, singles)
