"""Pluggable scorers: exact/cutoff/grid agreement and engine wiring."""

import numpy as np
import pytest

from repro.metadock.engine import MetadockEngine
from repro.scoring.composite import interaction_score
from repro.scoring.scorers import (
    CutoffScorer,
    ExactScorer,
    GridScorer,
    make_scorer,
)


@pytest.fixture(scope="module")
def pair(small_complex):
    lig = small_complex.ligand_crystal
    template = lig.with_coords(lig.coords - lig.centroid())
    return small_complex.receptor, template, lig.coords


class TestExactScorer:
    def test_matches_interaction_score(self, pair, small_complex):
        rec, template, coords = pair
        scorer = ExactScorer(rec, template)
        assert scorer.score(coords) == pytest.approx(
            interaction_score(small_complex.receptor, small_complex.ligand_crystal)
        )

    def test_batch_matches_single(self, pair, rng):
        rec, template, coords = pair
        scorer = ExactScorer(rec, template)
        batch = coords[None] + rng.normal(scale=1.0, size=(4, 1, 3))
        out = scorer.score_batch(batch)
        for k in range(4):
            assert out[k] == pytest.approx(scorer.score(batch[k]), rel=1e-9)


class TestCutoffScorer:
    def test_converges_to_exact(self, pair):
        rec, template, coords = pair
        exact = ExactScorer(rec, template).score(coords)
        errors = []
        for cutoff in (6.0, 12.0, 24.0):
            approx = CutoffScorer(rec, template, cutoff=cutoff).score(coords)
            errors.append(abs(approx - exact))
        assert errors[-1] <= errors[0]
        assert errors[-1] < 0.05 * max(abs(exact), 1.0)

    def test_huge_unshifted_cutoff_is_exact(self, pair):
        rec, template, coords = pair
        exact = ExactScorer(rec, template).score(coords)
        full = CutoffScorer(
            rec, template, cutoff=1000.0, shifted=False
        ).score(coords)
        assert full == pytest.approx(exact, rel=1e-9)

    def test_shift_vanishes_with_cutoff(self, pair):
        rec, template, coords = pair
        exact = ExactScorer(rec, template).score(coords)
        shifted = CutoffScorer(rec, template, cutoff=1e6).score(coords)
        assert shifted == pytest.approx(exact, rel=1e-4)

    def test_far_pose_scores_zero(self, pair):
        rec, template, coords = pair
        scorer = CutoffScorer(rec, template, cutoff=8.0)
        assert scorer.score(coords + 500.0) == 0.0

    def test_batch_matches_single(self, pair, rng):
        rec, template, coords = pair
        scorer = CutoffScorer(rec, template, cutoff=10.0)
        batch = coords[None] + rng.normal(scale=1.0, size=(3, 1, 3))
        out = scorer.score_batch(batch)
        for k in range(3):
            assert out[k] == pytest.approx(scorer.score(batch[k]))

    def test_invalid_cutoff(self, pair):
        rec, template, _ = pair
        with pytest.raises(ValueError):
            CutoffScorer(rec, template, cutoff=0.0)

    def test_clash_still_catastrophic(self, pair):
        rec, template, _coords = pair
        scorer = CutoffScorer(rec, template, cutoff=10.0)
        clash = np.tile(rec.coords[0], (template.n_atoms, 1))
        assert scorer.score(clash) < -1e6


class TestGridScorer:
    def test_rough_agreement(self, pair):
        rec, template, coords = pair
        exact = ExactScorer(rec, template).score(coords)
        approx = GridScorer(rec, template, spacing=0.8).score(coords)
        assert approx == pytest.approx(exact, rel=0.5)

    def test_batch(self, pair):
        rec, template, coords = pair
        scorer = GridScorer(rec, template, spacing=1.5)
        out = scorer.score_batch(np.stack([coords, coords + 1.0]))
        assert out.shape == (2,)


class TestFactoryAndEngine:
    def test_factory(self, pair):
        rec, template, _ = pair
        assert isinstance(make_scorer("exact", rec, template), ExactScorer)
        assert isinstance(
            make_scorer("cutoff", rec, template, cutoff=9.0), CutoffScorer
        )
        assert isinstance(
            make_scorer("grid", rec, template, spacing=2.0), GridScorer
        )
        with pytest.raises(ValueError):
            make_scorer("quantum", rec, template)

    def test_engine_cutoff_mode(self, small_complex):
        exact_eng = MetadockEngine(small_complex)
        cut_eng = MetadockEngine(
            small_complex,
            scoring_method="cutoff",
            scoring_kwargs={"cutoff": 1000.0, "shifted": False},
        )
        exact_eng.reset()
        cut_eng.reset()
        assert cut_eng.score() == pytest.approx(exact_eng.score(), rel=1e-9)

    def test_engine_grid_mode_runs(self, small_complex):
        eng = MetadockEngine(
            small_complex,
            scoring_method="grid",
            scoring_kwargs={"spacing": 1.5},
        )
        obs = eng.reset()
        assert np.isfinite(obs.score)

    def test_engine_scorer_used_for_batches(self, small_complex):
        eng = MetadockEngine(
            small_complex,
            scoring_method="cutoff",
            scoring_kwargs={"cutoff": 12.0},
        )
        eng.reset()
        poses = [eng.pose, eng.pose.translated([1.0, 0, 0])]
        batch = eng.score_poses(poses)
        singles = [eng.score_pose(p) for p in poses]
        np.testing.assert_allclose(batch, singles)
