"""Sinks: JSONL/CSV round-trips, buffering, and JSON safety."""

import json
import math

import numpy as np
import pytest

from repro.telemetry.sinks import (
    CsvMetricsSink,
    JsonlEventSink,
    MemorySink,
    NullSink,
    TelemetrySink,
    json_safe,
    read_events,
    read_metrics_csv,
)


class TestJsonSafe:
    def test_nan_inf_become_none(self):
        rec = json_safe(
            {"a": float("nan"), "b": float("inf"), "c": -math.inf, "d": 1.5}
        )
        assert rec == {"a": None, "b": None, "c": None, "d": 1.5}

    def test_numpy_values(self):
        rec = json_safe(
            {"arr": np.arange(3), "scalar": np.float64(2.5), "i": np.int32(7)}
        )
        assert rec == {"arr": [0, 1, 2], "scalar": 2.5, "i": 7}

    def test_nested_and_tuples(self):
        assert json_safe({"t": (1, 2), "d": {"x": [np.nan]}}) == {
            "t": [1, 2],
            "d": {"x": [None]},
        }

    def test_fallback_str(self):
        class Weird:
            def __repr__(self):
                return "<weird>"

        assert json_safe(Weird()) == "<weird>"


class TestProtocol:
    def test_all_sinks_satisfy_protocol(self, tmp_path):
        sinks = [
            MemorySink(),
            NullSink(),
            JsonlEventSink(tmp_path / "e.jsonl"),
            CsvMetricsSink(tmp_path / "m.csv"),
        ]
        for sink in sinks:
            assert isinstance(sink, TelemetrySink)
            sink.close()


class TestJsonlEventSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        events = [
            {"event": "run_start", "seed": 0},
            {"event": "step", "reward": -1.0, "score": float("nan")},
            {"event": "run_end", "status": "completed"},
        ]
        with JsonlEventSink(path) as sink:
            for e in events:
                sink.emit(e)
        got = read_events(path)
        assert [e["event"] for e in got] == ["run_start", "step", "run_end"]
        assert got[1]["score"] is None  # NaN -> null
        # Every line is strict JSON.
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_buffering_and_flush(self, tmp_path):
        path = tmp_path / "e.jsonl"
        sink = JsonlEventSink(path, buffer_size=10)
        sink.emit({"event": "a"})
        assert path.read_text() == ""  # still buffered
        sink.flush()
        assert len(read_events(path)) == 1
        sink.close()

    def test_auto_flush_at_capacity(self, tmp_path):
        path = tmp_path / "e.jsonl"
        sink = JsonlEventSink(path, buffer_size=3)
        for k in range(3):
            sink.emit({"k": k})
        assert len(read_events(path)) == 3
        sink.close()

    def test_append_mode(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with JsonlEventSink(path) as sink:
            sink.emit({"n": 1})
        with JsonlEventSink(path) as sink:
            sink.emit({"n": 2})
        assert [e["n"] for e in read_events(path)] == [1, 2]

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlEventSink(tmp_path / "e.jsonl")
        sink.close()
        sink.close()  # idempotent
        with pytest.raises(RuntimeError):
            sink.emit({"event": "late"})

    def test_rejects_bad_buffer_size(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlEventSink(tmp_path / "e.jsonl", buffer_size=0)


class TestCsvMetricsSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "metrics.csv"
        with CsvMetricsSink(path) as sink:
            sink.write_rows(
                [
                    {"name": "steps", "kind": "counter", "count": 5,
                     "value": 5.0},
                    {"name": "loss", "kind": "histogram", "count": 3,
                     "mean": 0.5, "p50": 0.4, "extra_key": "dropped"},
                ]
            )
        rows = read_metrics_csv(path)
        assert len(rows) == 2
        steps = rows[0]
        assert steps["name"] == "steps"
        assert steps["value"] == 5.0
        assert steps["p50"] is None  # missing -> empty -> None
        assert "extra_key" not in rows[1]

    def test_emit_after_close_raises(self, tmp_path):
        sink = CsvMetricsSink(tmp_path / "m.csv")
        sink.close()
        with pytest.raises(RuntimeError):
            sink.emit({"name": "x"})


class TestMemorySink:
    def test_records_json_safe_copies(self):
        sink = MemorySink()
        sink.emit({"event": "a", "v": float("nan")})
        assert sink.records == [{"event": "a", "v": None}]
        sink.flush()
        assert sink.flush_calls == 1
        sink.close()
        with pytest.raises(RuntimeError):
            sink.emit({"event": "b"})
