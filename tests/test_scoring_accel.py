"""Accelerators: cell-list neighbor search and potential grids."""

import numpy as np
import pytest

from repro.chem.molecule import Molecule
from repro.scoring.composite import interaction_score
from repro.scoring.grid import PotentialGrid
from repro.scoring.neighborlist import CellList, cutoff_pairs


class TestCellList:
    def test_query_matches_brute_force(self, rng):
        pts = rng.normal(size=(200, 3)) * 10.0
        cl = CellList(pts, cell_size=4.0)
        for _ in range(10):
            center = rng.normal(size=3) * 8.0
            r = float(rng.uniform(1.0, 4.0))
            got = set(cl.query(center, r))
            want = set(
                np.nonzero(np.linalg.norm(pts - center, axis=1) <= r)[0]
            )
            assert got == want

    def test_large_radius_widens_scan(self, rng):
        pts = rng.normal(size=(100, 3)) * 10.0
        cl = CellList(pts, cell_size=3.0)
        center = np.zeros(3)
        got = set(cl.query(center, 12.0))
        want = set(np.nonzero(np.linalg.norm(pts, axis=1) <= 12.0)[0])
        assert got == want

    def test_empty_region(self, rng):
        pts = rng.normal(size=(50, 3))
        cl = CellList(pts, cell_size=2.0)
        assert cl.query([100.0, 100.0, 100.0], 1.0).size == 0

    def test_query_many_union(self, rng):
        pts = rng.normal(size=(80, 3)) * 5
        cl = CellList(pts, cell_size=3.0)
        centers = rng.normal(size=(3, 3)) * 5
        union = set(cl.query_many(centers, 2.5))
        manual = set()
        for c in centers:
            manual |= set(cl.query(c, 2.5))
        assert union == manual

    def test_len(self, rng):
        assert len(CellList(rng.normal(size=(7, 3)))) == 7

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            CellList(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            CellList(np.zeros((3, 3)), cell_size=0.0)

    def test_cutoff_pairs(self, rng):
        pts = rng.normal(size=(60, 3)) * 6
        probes = rng.normal(size=(5, 3)) * 6
        cl = CellList(pts, cell_size=3.0)
        si, pi = cutoff_pairs(cl, probes, 3.0)
        assert si.shape == pi.shape
        d = np.linalg.norm(pts[si] - probes[pi], axis=1)
        assert (d <= 3.0).all()
        # Completeness: count matches brute force.
        brute = (
            np.linalg.norm(
                pts[:, None, :] - probes[None, :, :], axis=-1
            )
            <= 3.0
        ).sum()
        assert si.size == brute

    def test_cutoff_pairs_empty(self, rng):
        cl = CellList(rng.normal(size=(10, 3)))
        si, pi = cutoff_pairs(cl, np.full((2, 3), 99.0), 1.0)
        assert si.size == 0 and pi.size == 0


class TestPotentialGrid:
    def test_approximates_exact_score(self, small_complex):
        grid = PotentialGrid(small_complex.receptor, spacing=0.75)
        lig = small_complex.ligand_crystal
        exact = interaction_score(small_complex.receptor, lig)
        approx = grid.score(lig)
        # Grid drops the H-bond term and uses geometric-sigma LJ: expect
        # agreement within ~25% at a well-separated pose.
        assert approx == pytest.approx(exact, rel=0.35)

    def test_finer_grid_converges_on_coulomb_only_system(self, rng):
        # On a charges-only receptor (epsilon = 0, no donors/acceptors)
        # the grid model is exact up to interpolation, so refinement must
        # converge to the true score.
        rec = Molecule.from_symbols(
            ["C"] * 30, rng.normal(size=(30, 3)) * 5.0
        )
        rec.epsilon = np.zeros(30)
        rec.charges = rng.normal(size=30)
        rec.hbond_donor = np.zeros(30, dtype=bool)
        rec.hbond_acceptor = np.zeros(30, dtype=bool)
        lig = Molecule.from_symbols(["C"], [[9.0, 0.0, 0.0]])
        lig.epsilon = np.zeros(1)
        lig.charges = np.array([0.7])
        lig.hbond_donor = np.zeros(1, dtype=bool)
        lig.hbond_acceptor = np.zeros(1, dtype=bool)
        exact = interaction_score(rec, lig)
        coarse = PotentialGrid(rec, spacing=2.5).score(lig)
        fine = PotentialGrid(rec, spacing=0.5).score(lig)
        assert abs(fine - exact) < abs(coarse - exact)
        assert fine == pytest.approx(exact, rel=0.05)

    def test_coords_override(self, small_complex):
        grid = PotentialGrid(small_complex.receptor, spacing=1.5)
        lig = small_complex.ligand_crystal
        s1 = grid.score(lig)
        s2 = grid.score(lig, coords=lig.coords + [0.5, 0, 0])
        assert s1 != pytest.approx(s2)

    def test_invalid_spacing(self, small_complex):
        with pytest.raises(ValueError):
            PotentialGrid(small_complex.receptor, spacing=0.0)

    def test_nbytes_positive(self, small_complex):
        grid = PotentialGrid(small_complex.receptor, spacing=2.0)
        assert grid.nbytes() > 0

    def test_electrostatic_sign(self):
        # Single positive charge: potential positive everywhere nearby.
        rec = Molecule.from_symbols(["N"], [[0.0, 0.0, 0.0]])
        rec.charges = np.array([1.0])
        grid = PotentialGrid(rec, spacing=0.5, padding=3.0)
        probe = Molecule.from_symbols(["N"], [[2.0, 0.0, 0.0]])
        probe.charges = np.array([1.0])
        # like charges repel -> energy positive -> score negative
        assert grid.score(probe) < 0
