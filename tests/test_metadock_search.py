"""Metaheuristic schema, strategies, Monte Carlo, spots."""

import numpy as np
import pytest

from repro.metadock.metaheuristic import (
    MetaheuristicParams,
    MetaheuristicSchema,
)
from repro.metadock.montecarlo import (
    MonteCarloConfig,
    MonteCarloOptimizer,
)
from repro.metadock.spots import spot_containing, surface_atoms, surface_spots
from repro.metadock.strategies import STRATEGY_PRESETS


class TestMetaheuristicParams:
    def test_selection_bounded_by_population(self):
        with pytest.raises(ValueError):
            MetaheuristicParams(population_size=4, n_best_select=4, n_worst_select=1)

    def test_mutation_rate_bounds(self):
        with pytest.raises(ValueError):
            MetaheuristicParams(mutation_rate=1.5)

    def test_negative_generations_rejected(self):
        with pytest.raises(ValueError):
            MetaheuristicParams(generations=-1)

    def test_presets_valid(self):
        for name, factory in STRATEGY_PRESETS.items():
            params = factory(100)
            assert params.max_evaluations == 100, name


class TestMetaheuristicSchema:
    def test_improves_over_generations(self, engine):
        params = MetaheuristicParams(
            population_size=12,
            n_best_select=4,
            n_worst_select=1,
            n_combine=6,
            improve_iterations=2,
            generations=6,
        )
        res = MetaheuristicSchema(engine, params, seed=0).run()
        assert res.history[-1] >= res.history[0]

    def test_history_monotone(self, engine):
        params = STRATEGY_PRESETS["scatter"](400)
        res = MetaheuristicSchema(engine, params, seed=1).run()
        assert all(b >= a - 1e-9 for a, b in zip(res.history, res.history[1:]))

    def test_budget_respected_approximately(self, engine):
        params = STRATEGY_PRESETS["ga"](150)
        res = MetaheuristicSchema(engine, params, seed=2).run()
        # The loop checks the cap between phases; one generation of
        # overshoot is allowed.
        assert res.evaluations <= 150 + params.population_size + params.n_combine + 50

    def test_deterministic_in_seed(self, engine):
        params = STRATEGY_PRESETS["local"](120)
        a = MetaheuristicSchema(engine, params, seed=7).run()
        b = MetaheuristicSchema(engine, params, seed=7).run()
        assert a.best_score == pytest.approx(b.best_score)

    def test_random_search_is_best_of_init(self, engine):
        params = STRATEGY_PRESETS["random"](None)
        res = MetaheuristicSchema(engine, params, seed=3).run()
        assert len(res.history) == 1
        assert res.evaluations == params.population_size * max(
            1, params.init_candidates
        )

    def test_beats_random_search(self, engine):
        budget = 300
        rand = MetaheuristicSchema(
            engine, STRATEGY_PRESETS["random"](budget), seed=4
        ).run()
        local = MetaheuristicSchema(
            engine, STRATEGY_PRESETS["local"](budget), seed=4
        ).run()
        assert local.best_score >= rand.best_score - 5.0

    def test_summary_string(self, engine):
        res = MetaheuristicSchema(
            engine, STRATEGY_PRESETS["random"](50), seed=5
        ).run()
        assert "best score" in res.summary()

    def test_flexible_poses_supported(self, flex_engine):
        params = MetaheuristicParams(
            population_size=6,
            n_best_select=3,
            n_worst_select=0,
            n_combine=3,
            improve_iterations=1,
            generations=3,
        )
        res = MetaheuristicSchema(flex_engine, params, seed=6).run()
        assert len(res.best_pose.torsions) == 2


class TestMonteCarloConfig:
    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            MonteCarloConfig(steps=0)

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            MonteCarloConfig(temperature_final=0.0)


class TestMonteCarlo:
    def test_finds_positive_score(self, engine):
        res = MonteCarloOptimizer(
            engine, MonteCarloConfig(steps=400, restarts=2), seed=0
        ).run()
        assert res.best_score > 0.0

    def test_history_best_so_far_monotone(self, engine):
        res = MonteCarloOptimizer(
            engine, MonteCarloConfig(steps=200, restarts=1), seed=1
        ).run()
        assert all(b >= a for a, b in zip(res.history, res.history[1:]))

    def test_acceptance_rate_in_range(self, engine):
        res = MonteCarloOptimizer(
            engine, MonteCarloConfig(steps=200, restarts=2), seed=2
        ).run()
        assert 0.0 < res.acceptance_rate <= 1.0

    def test_deterministic(self, engine):
        cfg = MonteCarloConfig(steps=150, restarts=1)
        a = MonteCarloOptimizer(engine, cfg, seed=3).run()
        b = MonteCarloOptimizer(engine, cfg, seed=3).run()
        assert a.best_score == pytest.approx(b.best_score)

    def test_evaluation_accounting(self, engine):
        cfg = MonteCarloConfig(steps=100, restarts=2)
        res = MonteCarloOptimizer(engine, cfg, seed=4).run()
        # restarts x (1 init + steps_per) evaluations
        assert res.evaluations == 2 * (1 + 50)

    def test_summary(self, engine):
        res = MonteCarloOptimizer(
            engine, MonteCarloConfig(steps=60, restarts=1), seed=5
        ).run()
        assert "acceptance" in res.summary()


class TestSpots:
    def test_surface_atoms_on_shell(self, small_complex):
        rec = small_complex.receptor
        idx = surface_atoms(rec, shell=2.5)
        assert idx.size > 0
        center = rec.centroid()
        r = np.linalg.norm(rec.coords - center, axis=1)
        assert (r[idx] >= r.max() - 2.5 - 1e-9).all()

    def test_spot_count_and_coverage(self, small_complex):
        spots = surface_spots(small_complex.receptor, 6)
        assert 1 <= len(spots) <= 6
        total = sum(s.n_atoms for s in spots)
        assert total == surface_atoms(small_complex.receptor).size

    def test_anchors_outside_surface(self, small_complex):
        rec = small_complex.receptor
        center = rec.centroid()
        max_r = np.linalg.norm(rec.coords - center, axis=1).max()
        for s in surface_spots(rec, 8, standoff=3.0):
            # anchor sits near/above the local surface radius
            assert np.linalg.norm(s.center - center) > max_r - 4.0

    def test_spots_capped_by_surface_atoms(self, small_complex):
        spots = surface_spots(small_complex.receptor, 10000)
        assert len(spots) <= surface_atoms(small_complex.receptor).size

    def test_invalid_count(self, small_complex):
        with pytest.raises(ValueError):
            surface_spots(small_complex.receptor, 0)

    def test_spot_containing(self, small_complex):
        spots = surface_spots(small_complex.receptor, 4)
        hit = spot_containing(spots, spots[0].center)
        assert hit == 0
        assert spot_containing(spots, np.array([999.0, 0, 0])) is None
