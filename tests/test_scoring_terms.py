"""Individual Eq. 1 terms: electrostatics, Lennard-Jones, hydrogen bond."""

import math

import numpy as np
import pytest

from repro.constants import COULOMB_CONSTANT, MIN_DISTANCE
from repro.scoring.electrostatics import (
    coulomb_pair,
    electrostatic_energy,
    electrostatic_energy_batch,
    electrostatic_energy_matrix,
)
from repro.scoring.hbond import (
    HBOND_DEPTH,
    HBOND_R0,
    eligible_pairs_mask,
    hbond_1210_pair,
    hbond_angle_factors,
    hbond_coefficients,
    hbond_energy_matrix,
)
from repro.scoring.lennard_jones import (
    combine_lj,
    lennard_jones_energy,
    lennard_jones_energy_batch,
    lennard_jones_energy_matrix,
    lj_minimum,
    lj_pair,
)
from repro.scoring.pairwise import (
    direction_vectors,
    pairwise_distances,
    pairwise_distances_batch,
)


class TestPairwiseDistances:
    def test_matches_naive(self, rng):
        a = rng.normal(size=(7, 3))
        b = rng.normal(size=(5, 3))
        d = pairwise_distances(a, b)
        naive = np.linalg.norm(a[:, None] - b[None, :], axis=-1)
        np.testing.assert_allclose(d, np.maximum(naive, MIN_DISTANCE), atol=1e-10)

    def test_clamped_at_min_distance(self):
        d = pairwise_distances(np.zeros((1, 3)), np.zeros((1, 3)))
        assert d[0, 0] == pytest.approx(MIN_DISTANCE)

    def test_batch_matches_loop(self, rng):
        a = rng.normal(size=(6, 3))
        batch = rng.normal(size=(4, 3, 3))
        db = pairwise_distances_batch(a, batch)
        for k in range(4):
            np.testing.assert_allclose(
                db[k], pairwise_distances(a, batch[k]), atol=1e-10
            )

    def test_batch_shape_validated(self):
        with pytest.raises(ValueError):
            pairwise_distances_batch(np.zeros((2, 3)), np.zeros((2, 3)))


class TestElectrostatics:
    def test_single_pair_value(self):
        qa, qb = np.array([1.0]), np.array([-1.0])
        d = np.array([[2.0]])
        e = electrostatic_energy(qa, qb, d)
        assert e == pytest.approx(-COULOMB_CONSTANT / 2.0)

    def test_opposite_charges_attract(self):
        d = np.array([[3.0]])
        assert electrostatic_energy(np.array([1.0]), np.array([-1.0]), d) < 0
        assert electrostatic_energy(np.array([1.0]), np.array([1.0]), d) > 0

    def test_bilinear_form_matches_matrix_sum(self, rng):
        qa = rng.normal(size=6)
        qb = rng.normal(size=4)
        d = pairwise_distances(rng.normal(size=(6, 3)), rng.normal(size=(4, 3)))
        total = electrostatic_energy(qa, qb, d)
        mat = electrostatic_energy_matrix(qa, qb, d)
        assert total == pytest.approx(mat.sum())

    def test_distance_dependent_dielectric_weakens(self):
        d = np.array([[3.0]])
        plain = electrostatic_energy(np.array([1.0]), np.array([1.0]), d)
        screened = electrostatic_energy(
            np.array([1.0]), np.array([1.0]), d, distance_dependent=True
        )
        assert 0 < screened < plain

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            electrostatic_energy(
                np.ones(3), np.ones(2), np.ones((2, 2))
            )

    def test_batch_matches_loop(self, rng):
        qa = rng.normal(size=5)
        qb = rng.normal(size=3)
        d = np.abs(rng.normal(size=(4, 5, 3))) + 1.0
        batch = electrostatic_energy_batch(qa, qb, d)
        for k in range(4):
            assert batch[k] == pytest.approx(
                electrostatic_energy(qa, qb, d[k])
            )

    def test_pair_helper_clamps(self):
        assert coulomb_pair(1.0, 1.0, 0.0) == coulomb_pair(1.0, 1.0, MIN_DISTANCE)


class TestLennardJones:
    def test_minimum_location_and_depth(self):
        sigma, eps = 3.4, 0.2
        r0 = lj_minimum(sigma)
        assert lj_pair(sigma, eps, r0) == pytest.approx(-eps)
        # Derivative sign change around the minimum.
        assert lj_pair(sigma, eps, r0 * 0.99) > -eps
        assert lj_pair(sigma, eps, r0 * 1.01) > -eps

    def test_repulsive_wall(self):
        assert lj_pair(3.4, 0.2, 1.0) > 1e3

    def test_vanishes_at_long_range(self):
        assert abs(lj_pair(3.4, 0.2, 50.0)) < 1e-6
        assert abs(lj_pair(3.4, 0.2, 200.0)) < abs(lj_pair(3.4, 0.2, 50.0))

    def test_combination_rules(self):
        sig, eps = combine_lj(
            np.array([3.0]), np.array([0.1]), np.array([4.0]), np.array([0.4])
        )
        assert sig[0, 0] == pytest.approx(3.5)
        assert eps[0, 0] == pytest.approx(0.2)

    def test_matrix_total_agree(self, rng):
        sa, ea = np.abs(rng.normal(size=5)) + 3, np.abs(rng.normal(size=5)) * 0.1 + 0.01
        sb, eb = np.abs(rng.normal(size=4)) + 3, np.abs(rng.normal(size=4)) * 0.1 + 0.01
        d = np.abs(rng.normal(size=(5, 4))) + 3.0
        total = lennard_jones_energy(sa, ea, sb, eb, d)
        assert total == pytest.approx(
            lennard_jones_energy_matrix(sa, ea, sb, eb, d).sum()
        )

    def test_batch_matches_loop(self, rng):
        sa, ea = np.full(3, 3.4), np.full(3, 0.1)
        sb, eb = np.full(2, 3.0), np.full(2, 0.2)
        d = np.abs(rng.normal(size=(5, 3, 2))) + 3.0
        batch = lennard_jones_energy_batch(sa, ea, sb, eb, d)
        for k in range(5):
            assert batch[k] == pytest.approx(
                lennard_jones_energy(sa, ea, sb, eb, d[k])
            )


class TestHbond:
    def test_coefficients_minimum(self):
        c, d = hbond_coefficients()
        r0 = HBOND_R0
        # E'(r0) = 0 for the 12-10 form.
        deriv = -12 * c / r0**13 + 10 * d / r0**11
        assert deriv == pytest.approx(0.0, abs=1e-9)
        assert hbond_1210_pair(r0) == pytest.approx(-HBOND_DEPTH)

    def test_eligibility_symmetric_roles(self):
        donor_a = np.array([True, False])
        acc_a = np.array([False, False])
        donor_b = np.array([False])
        acc_b = np.array([True])
        mask = eligible_pairs_mask(donor_a, acc_a, donor_b, acc_b)
        assert mask[0, 0] and not mask[1, 0]

    def test_acceptor_side_a_counts(self):
        mask = eligible_pairs_mask(
            np.array([False]), np.array([True]),
            np.array([True]), np.array([False]),
        )
        assert mask[0, 0]

    def test_angle_factors_aligned(self):
        ca = np.array([[0.0, 0.0, 0.0]])
        cb = np.array([[0.0, 0.0, 3.0]])
        dirs = np.array([[0.0, 0.0, 1.0]])
        cos, sin = hbond_angle_factors(ca, cb, dirs)
        assert cos[0, 0] == pytest.approx(1.0)
        assert sin[0, 0] == pytest.approx(0.0)

    def test_angle_factors_perpendicular(self):
        ca = np.array([[0.0, 0.0, 0.0]])
        cb = np.array([[3.0, 0.0, 0.0]])
        dirs = np.array([[0.0, 0.0, 1.0]])
        cos, sin = hbond_angle_factors(ca, cb, dirs)
        assert cos[0, 0] == pytest.approx(0.0)
        assert sin[0, 0] == pytest.approx(1.0)

    def test_opposed_direction_clamped_to_zero(self):
        ca = np.array([[0.0, 0.0, 0.0]])
        cb = np.array([[0.0, 0.0, -3.0]])
        dirs = np.array([[0.0, 0.0, 1.0]])
        cos, _sin = hbond_angle_factors(ca, cb, dirs)
        assert cos[0, 0] == 0.0

    def test_zero_direction_isotropic(self):
        ca = np.zeros((1, 3))
        cb = np.array([[3.0, 0.0, 0.0]])
        cos, sin = hbond_angle_factors(ca, cb, np.zeros((1, 3)))
        assert cos[0, 0] == 1.0 and sin[0, 0] == 0.0

    def test_correction_replaces_lj_when_aligned(self):
        # Fully aligned pair at r0: correction = E_1210 - E_LJ, so
        # LJ + correction == pure 12-10 well depth.
        d = np.array([[HBOND_R0]])
        mask = np.array([[True]])
        cos = np.array([[1.0]])
        sin = np.array([[0.0]])
        sig = np.array([[3.2]])
        eps = np.array([[0.15]])
        corr = hbond_energy_matrix(d, mask, cos, sin, sig, eps)
        e_lj = lj_pair(3.2, 0.15, HBOND_R0)
        assert corr[0, 0] + e_lj == pytest.approx(-HBOND_DEPTH)

    def test_masked_pairs_zero(self):
        d = np.array([[2.9]])
        out = hbond_energy_matrix(
            d,
            np.array([[False]]),
            np.array([[1.0]]),
            np.array([[0.0]]),
            np.array([[3.2]]),
            np.array([[0.2]]),
        )
        assert out[0, 0] == 0.0


class TestDirectionVectors:
    def test_no_bonds_zero(self):
        dirs = direction_vectors(np.zeros((3, 3)), np.empty((0, 2)))
        np.testing.assert_array_equal(dirs, 0.0)

    def test_points_away_from_neighbor(self):
        coords = np.array([[0.0, 0, 0], [1.5, 0, 0]])
        dirs = direction_vectors(coords, np.array([[0, 1]]))
        np.testing.assert_allclose(dirs[0], [-1, 0, 0], atol=1e-12)
        np.testing.assert_allclose(dirs[1], [1, 0, 0], atol=1e-12)

    def test_unit_norm_for_bonded(self):
        coords = np.array([[0.0, 0, 0], [1.5, 0, 0], [0, 1.5, 0]])
        dirs = direction_vectors(coords, np.array([[0, 1], [0, 2]]))
        assert np.linalg.norm(dirs[0]) == pytest.approx(1.0)

    def test_symmetric_neighbors_give_zero(self):
        # Atom exactly between two neighbors: direction degenerates to 0.
        coords = np.array([[0.0, 0, 0], [-1.5, 0, 0], [1.5, 0, 0]])
        dirs = direction_vectors(
            coords, np.array([[0, 1], [0, 2]])
        )
        np.testing.assert_allclose(dirs[0], 0.0, atol=1e-12)
