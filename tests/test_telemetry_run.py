"""TelemetryRun lifecycle, manifests, and trainer callback wiring."""

import json

import numpy as np
import pytest

from repro.rl.agent import AgentConfig, DQNAgent
from repro.rl.trainer import Trainer
from repro.telemetry import (
    MANIFEST_NAME,
    MemorySink,
    RecordingCallback,
    RunManifest,
    StepInfo,
    TelemetryRun,
    read_events,
    read_metrics_csv,
)


class ChainEnv:
    """Tiny deterministic env: 'score' walks up/down a line."""

    def __init__(self, horizon=8):
        self.horizon = horizon
        self.score = 0.0
        self.t = 0
        self.n_actions = 2
        self.state_dim = 2

    def reset(self):
        self.score = 0.0
        self.t = 0
        return np.array([0.0, 0.0])

    def step(self, action):
        self.t += 1
        self.score += 1.0 if action == 0 else -1.0
        done = self.t >= self.horizon
        info = {"score": self.score}
        if done:
            info["termination"] = "chain-end"
        state = np.array([self.score, float(self.t)])
        return state, float(1.0 if action == 0 else -1.0), done, info


def tiny_agent() -> DQNAgent:
    return DQNAgent(
        AgentConfig(
            state_dim=2,
            n_actions=2,
            hidden_sizes=(8,),
            replay_capacity=256,
            minibatch_size=4,
            initial_exploration_steps=0,
            epsilon_decay=0.05,
            epsilon_final=0.0,
            learning_rate=0.01,
            seed=0,
        )
    )


class TestRunManifest:
    def test_round_trip(self, tmp_path):
        m = RunManifest.create("figure4", seed=3, config={"episodes": 5})
        path = tmp_path / MANIFEST_NAME
        m.write(path)
        loaded = RunManifest.load(path)
        assert loaded.run_id == m.run_id
        assert loaded.seed == 3
        assert loaded.config == {"episodes": 5}
        assert loaded.status == "running"
        assert loaded.finished_at is None

    def test_finalize_sets_end_fields(self):
        m = RunManifest.create("x")
        m.finalize("completed")
        assert m.status == "completed"
        assert m.finished_at is not None
        assert m.duration_seconds >= 0.0

    def test_unknown_keys_ignored_on_load(self, tmp_path):
        m = RunManifest.create("x")
        data = m.to_dict()
        data["future_field"] = 42
        path = tmp_path / "m.json"
        path.write_text(json.dumps(data))
        assert RunManifest.load(path).run_id == m.run_id

    def test_header_mentions_run_id(self):
        m = RunManifest.create("x", seed=1)
        assert m.run_id in m.header()
        assert "seed 1" in m.header()


class TestTelemetryRun:
    def test_run_dir_contract(self, tmp_path):
        d = tmp_path / "run"
        with TelemetryRun(d, command="demo", seed=1) as run:
            run.emit("custom", value=3)
            run.registry.inc("steps", 2)
            with run.tracer.span("work"):
                pass
        assert (d / "manifest.json").exists()
        assert (d / "events.jsonl").exists()
        assert (d / "metrics.csv").exists()

        manifest = RunManifest.load(d / "manifest.json")
        assert manifest.status == "completed"
        assert manifest.finished_at is not None

        kinds = [e["event"] for e in read_events(d / "events.jsonl")]
        assert kinds[0] == "run_start"
        assert "custom" in kinds
        assert kinds[-1] == "run_end"
        assert "span_summary" in kinds

        rows = read_metrics_csv(d / "metrics.csv")
        names = {r["name"] for r in rows}
        assert "steps" in names
        assert "span/work" in names

    def test_exception_marks_failed(self, tmp_path):
        d = tmp_path / "run"
        with pytest.raises(RuntimeError):
            with TelemetryRun(d, command="demo"):
                raise RuntimeError("boom")
        manifest = RunManifest.load(d / "manifest.json")
        assert manifest.status == "failed"
        events = read_events(d / "events.jsonl")
        assert events[-1] == {
            **events[-1], "event": "run_end", "status": "failed",
        }

    def test_finalize_idempotent(self, tmp_path):
        run = TelemetryRun(tmp_path / "run", command="demo")
        run.finalize()
        run.finalize()  # no error, no duplicate writes
        run.emit("late")  # dropped silently
        events = read_events(tmp_path / "run" / "events.jsonl")
        assert [e["event"] for e in events].count("run_end") == 1

    def test_extra_sinks_receive_events(self, tmp_path):
        extra = MemorySink()
        with TelemetryRun(
            tmp_path / "run", command="demo", sinks=[extra]
        ) as run:
            run.emit("ping")
        assert "ping" in [r["event"] for r in extra.records]
        assert extra.closed

    def test_step_interval_throttles_step_events(self, tmp_path):
        d = tmp_path / "run"
        with TelemetryRun(d, command="demo", step_interval=5) as run:
            cb = run.callback()
            for g in range(1, 11):
                cb.on_step(
                    StepInfo(
                        episode=0, step=g - 1, global_step=g, action=0,
                        reward=1.0, score=1.0, max_q=0.5, epsilon=0.9,
                        loss=float("nan"), done=False,
                    )
                )
        events = read_events(d / "events.jsonl")
        steps = [e for e in events if e["event"] == "step"]
        assert [e["global_step"] for e in steps] == [5, 10]
        rows = read_metrics_csv(d / "metrics.csv")
        counter = next(r for r in rows if r["name"] == "steps")
        assert counter["value"] == 10.0  # registry sees every step

    def test_rejects_bad_step_interval(self, tmp_path):
        with pytest.raises(ValueError):
            TelemetryRun(tmp_path / "run", step_interval=0)

    def test_config_dataclass_lands_in_manifest(self, tmp_path):
        from repro.config import ci_scale_config

        cfg = ci_scale_config(episodes=2, seed=0)
        with TelemetryRun(
            tmp_path / "run", command="demo", config=cfg
        ):
            pass
        manifest = RunManifest.load(tmp_path / "run" / "manifest.json")
        assert manifest.config["episodes"] == 2


class TestCallbackOrdering:
    def test_hook_sequence_in_short_run(self):
        rec = RecordingCallback()
        env = ChainEnv(horizon=4)
        Trainer(
            env,
            tiny_agent(),
            episodes=2,
            max_steps_per_episode=4,
            callbacks=[rec],
        ).run()
        assert rec.hook_sequence() == (
            ["train_start"]
            + (["episode_start"] + ["step"] * 4 + ["episode_end"]) * 2
            + ["train_end"]
        )

    def test_step_info_contents(self):
        rec = RecordingCallback()
        env = ChainEnv(horizon=3)
        Trainer(
            env,
            tiny_agent(),
            episodes=1,
            max_steps_per_episode=3,
            callbacks=[rec],
        ).run()
        infos = [p for name, p in rec.calls if name == "step"]
        assert [i.step for i in infos] == [0, 1, 2]
        assert [i.global_step for i in infos] == [1, 2, 3]
        assert infos[-1].done is True
        assert all(i.episode == 0 for i in infos)
        # max_q comes from the acting forward pass: finite float.
        assert all(np.isfinite(i.max_q) for i in infos)

    def test_episode_end_receives_stats(self):
        rec = RecordingCallback()
        env = ChainEnv(horizon=3)
        history = Trainer(
            env,
            tiny_agent(),
            episodes=2,
            max_steps_per_episode=3,
            callbacks=[rec],
        ).run()
        stats = [p for name, p in rec.calls if name == "episode_end"]
        assert [s.episode for s in stats] == [0, 1]
        assert stats[0] is history.episodes[0]
        (final,) = [p for name, p in rec.calls if name == "train_end"]
        assert final is history

    def test_telemetry_callback_end_to_end(self, tmp_path):
        d = tmp_path / "run"
        with TelemetryRun(d, command="train", seed=0) as run:
            env = ChainEnv(horizon=4)
            Trainer(
                env,
                tiny_agent(),
                episodes=2,
                max_steps_per_episode=4,
                callbacks=[run.callback()],
                tracer=run.tracer,
            ).run()
        events = read_events(d / "events.jsonl")
        kinds = [e["event"] for e in events]
        assert kinds.count("episode_end") == 2
        assert kinds.count("step") == 8
        ep = next(e for e in events if e["event"] == "episode_end")
        assert {"episode", "steps", "total_reward"} <= set(ep)
        rows = read_metrics_csv(d / "metrics.csv")
        names = {r["name"] for r in rows}
        assert {"steps", "episodes", "reward", "max_q", "epsilon"} <= names
        assert any(n.startswith("span/train") for n in names)

    def test_replay_bytes_gauge(self, tmp_path):
        # The callback snapshots the agent's replay footprint at every
        # episode end (the agent arrives via on_train_start(trainer)).
        d = tmp_path / "run"
        agent = tiny_agent()
        with TelemetryRun(d, command="train", seed=0) as run:
            Trainer(
                ChainEnv(horizon=4),
                agent,
                episodes=2,
                max_steps_per_episode=4,
                callbacks=[run.callback()],
            ).run()
            assert (
                run.registry.gauge("replay_bytes").value
                == float(agent.replay.nbytes())
            )
            assert run.registry.gauge("replay_size").value == float(
                len(agent.replay)
            )
        rows = read_metrics_csv(d / "metrics.csv")
        by_name = {r["name"]: r for r in rows}
        assert by_name["replay_bytes"]["value"] > 0
        assert by_name["replay_size"]["value"] == 8.0

    def test_replay_bytes_skipped_without_agent(self, tmp_path):
        # Manual callback use without a trainer must not break.
        with TelemetryRun(tmp_path / "r", command="x") as run:
            cb = run.callback()
            cb.on_train_start(None)
            cb.on_episode_end(
                type("S", (), {"episode": 0, "total_reward": 1.0})()
            )
            names = {r["name"] for r in run.registry.snapshot_rows()}
            assert "replay_bytes" not in names
