"""Pose refinement (pattern search)."""

import numpy as np
import pytest

from repro.metadock.pose import Pose
from repro.metadock.refinement import refine_pose


class TestRefinePose:
    def test_never_worse(self, engine):
        engine.reset()
        start = engine.pose
        result = refine_pose(engine, start, max_iterations=10)
        assert result.improvement >= 0.0
        assert result.score == pytest.approx(
            engine.score_pose(result.pose), rel=1e-9
        )

    def test_improves_a_perturbed_crystal_pose(self, engine, small_complex):
        # Start near the crystal pose but displaced: refinement should
        # recover most of the gap.
        crystal = Pose(
            small_complex.ligand_crystal.centroid(),
            Pose.identity().orientation,
        )
        perturbed = crystal.translated([1.2, -0.8, 0.6]).rotated("x", 0.3)
        s_crystal = engine.score_pose(crystal)
        s_perturbed = engine.score_pose(perturbed)
        result = refine_pose(engine, perturbed)
        assert result.score > s_perturbed
        assert result.score >= 0.8 * s_crystal

    def test_converges_at_local_optimum(self, engine, small_complex):
        crystal = Pose(
            small_complex.ligand_crystal.centroid(),
            Pose.identity().orientation,
        )
        first = refine_pose(engine, crystal, tolerance=0.05)
        second = refine_pose(engine, first.pose, tolerance=0.05)
        # Re-refining an already-refined pose gains almost nothing.
        assert second.improvement <= max(0.05 * abs(first.score), 1.0)

    def test_deterministic(self, engine):
        engine.reset()
        a = refine_pose(engine, engine.pose, max_iterations=6)
        b = refine_pose(engine, engine.pose, max_iterations=6)
        assert a.score == pytest.approx(b.score)
        np.testing.assert_allclose(
            a.pose.translation, b.pose.translation
        )

    def test_refines_torsions(self, flex_engine):
        flex_engine.reset()
        pose = flex_engine.pose.twisted(0, 1.0)
        result = refine_pose(flex_engine, pose, max_iterations=8)
        assert result.improvement >= 0.0
        assert len(result.pose.torsions) == 2

    def test_invalid_args(self, engine):
        engine.reset()
        with pytest.raises(ValueError):
            refine_pose(engine, engine.pose, shrink=1.0)
        with pytest.raises(ValueError):
            refine_pose(engine, engine.pose, tolerance=0.0)

    def test_evaluation_budget_bounded(self, engine):
        engine.reset()
        result = refine_pose(engine, engine.pose, max_iterations=3)
        # <= 1 + iterations * (6 translations + 6 rotations) probes.
        assert result.evaluations <= 1 + 3 * 12
