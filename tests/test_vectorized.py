"""SyncVectorEnv and the batched-acting VectorTrainer."""

import numpy as np
import pytest

from repro.env.factory import make_vector_env
from repro.env.vectorized import SyncVectorEnv
from repro.rl.vector_trainer import VectorTrainer
from repro.telemetry.spans import SpanTracer

from tests.test_rl_trainer import CountingEnv, tiny_agent


def make_venv(n=3, horizon=6):
    return make_vector_env(
        env_fns=[lambda: CountingEnv(horizon=horizon)] * n, backend="sync"
    )


class TestSyncVectorEnv:
    def test_reset_shape(self):
        venv = make_venv(3)
        states = venv.reset()
        assert states.shape == (3, 2)
        assert venv.n_envs == 3
        assert venv.n_actions == 2

    def test_step_shapes(self):
        venv = make_venv(2)
        venv.reset()
        states, rewards, dones, infos = venv.step([0, 1])
        assert states.shape == (2, 2)
        assert rewards.shape == (2,)
        assert dones.shape == (2,)
        assert isinstance(infos, tuple) and len(infos) == 2
        assert rewards[0] == 1.0 and rewards[1] == -1.0

    def test_auto_reset_and_terminal_state(self):
        venv = make_venv(1, horizon=2)
        venv.reset()
        venv.step([0])
        states, _r, dones, infos = venv.step([0])
        assert dones[0]
        # Returned state is the fresh reset; the true terminal next
        # state is surfaced in the info dict.
        np.testing.assert_array_equal(states[0], [0.0, 0.0])
        assert "terminal_state" in infos[0]
        assert infos[0]["terminal_state"][1] == 2.0

    def test_action_count_validated(self):
        venv = make_venv(2)
        venv.reset()
        with pytest.raises(ValueError):
            venv.step([0])

    def test_action_ndim_validated(self):
        venv = make_venv(2)
        venv.reset()
        with pytest.raises(ValueError):
            venv.step(np.zeros((2, 1), dtype=int))

    def test_float_actions_rejected(self):
        venv = make_venv(2)
        venv.reset()
        with pytest.raises(TypeError):
            venv.step(np.array([0.0, 1.0]))
        with pytest.raises(TypeError):
            venv.step([0.5, 1.5])

    def test_integer_array_likes_accepted(self):
        venv = make_venv(2)
        venv.reset()
        for actions in ([0, 1], (0, 1), np.array([0, 1], dtype=np.int32)):
            _s, rewards, _d, _i = venv.step(actions)
            assert rewards.shape == (2,)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            make_vector_env(env_fns=[])

    def test_mismatched_envs_rejected(self):
        class OtherEnv(CountingEnv):
            def __init__(self):
                super().__init__()
                self.state_dim = 5

        with pytest.raises(ValueError):
            make_vector_env(env_fns=[lambda: CountingEnv(), OtherEnv])

    def test_direct_construction_deprecated_but_works(self):
        with pytest.warns(DeprecationWarning, match="make_vector_env"):
            venv = SyncVectorEnv([lambda: CountingEnv()])
        assert venv.reset().shape == (1, 2)

    def test_docking_envs_vectorize(self, small_complex):
        from repro.env.docking_env import DockingEnv
        from repro.metadock.engine import MetadockEngine

        venv = make_vector_env(
            env_fns=[
                lambda: DockingEnv(
                    MetadockEngine(small_complex, shift_length=0.8)
                )
            ]
            * 2
        )
        try:
            states = venv.reset()
            assert states.shape[0] == 2
            s2, r, d, infos = venv.step([5, 4])
            assert np.isfinite(infos[0]["score"])
            # opposite moves on identical complexes: opposite rewards
            assert r[0] != r[1]
        finally:
            venv.close()


class TestVectorTrainer:
    def test_collects_requested_steps(self):
        venv = make_venv(3, horizon=5)
        agent = tiny_agent()
        trainer = VectorTrainer(venv, agent)
        stats = trainer.run(total_steps=30)
        assert stats.total_steps == 30
        assert len(agent.replay) == 30
        assert stats.episodes_completed == 6  # 30 steps / (3 envs * 5)... per env 10 steps -> 2 episodes each
        assert agent.learn_steps > 0
        assert stats.worker_restarts == 0

    def test_update_density_matches_sequential(self):
        venv = make_venv(2, horizon=100)
        agent = tiny_agent()
        VectorTrainer(venv, agent, train_interval=4).run(total_steps=40)
        # 40 transitions / train_interval 4 = 10 updates (once learnable).
        assert 5 <= agent.learn_steps <= 10

    def test_target_sync_counted(self):
        venv = make_venv(2, horizon=100)
        agent = tiny_agent()
        VectorTrainer(venv, agent, target_update_steps=10).run(
            total_steps=40
        )
        assert agent.target_syncs == 4

    def test_learning_start_respected(self):
        venv = make_venv(2, horizon=100)
        agent = tiny_agent()
        VectorTrainer(venv, agent, learning_start=30).run(total_steps=40)
        # Learning only once global_step reaches 30 -> roughly the last
        # 10-12 transitions produce updates (vs 40 without the gate).
        assert 1 <= agent.learn_steps <= 14

    def test_agent_learns_the_chain(self):
        venv = make_venv(4, horizon=8)
        agent = tiny_agent()
        VectorTrainer(venv, agent).run(total_steps=600)
        from repro.rl.trainer import greedy_rollout

        best, _trace = greedy_rollout(
            CountingEnv(horizon=8), agent, max_steps=8
        )
        assert best == pytest.approx(8.0)

    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            VectorTrainer(make_venv(1), tiny_agent()).run(0)

    def test_stats_fields(self):
        venv = make_venv(2, horizon=5)
        agent = tiny_agent()
        stats = VectorTrainer(venv, agent).run(total_steps=20)
        assert stats.steps_per_second > 0
        assert np.isfinite(stats.mean_reward)
        assert "env-step" in stats.timer_report

    def test_external_tracer_reflected_in_report(self):
        # timer_report must render the tracer the caller supplied, and
        # the caller's tracer must accumulate the run's spans.
        tracer = SpanTracer()
        venv = make_venv(2, horizon=5)
        stats = VectorTrainer(venv, tiny_agent(), tracer=tracer).run(
            total_steps=20
        )
        assert stats.timer_report == tracer.report()
        assert tracer.get("env-step") is not None
        assert tracer.get("env-step").count == 10  # 20 steps / 2 envs

    def test_best_score_nan_safe_without_finite_scores(self):
        class ScorelessEnv(CountingEnv):
            def step(self, action):
                state, reward, done, _info = super().step(action)
                return state, reward, done, {}

        venv = make_vector_env(
            env_fns=[lambda: ScorelessEnv(horizon=5)] * 2
        )
        stats = VectorTrainer(venv, tiny_agent()).run(total_steps=20)
        # No env ever reported a finite score: NaN, never -inf.
        assert np.isnan(stats.best_score)
