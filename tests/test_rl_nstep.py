"""N-step returns and the Rainbow-lite variant."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PAPER_CONFIG
from repro.rl.agent import AgentConfig, DQNAgent
from repro.rl.nstep import NStepTransitionBuffer
from repro.rl.trainer import Trainer

from tests.test_rl_trainer import CountingEnv


def _push_chain(buf, rewards, terminal_last=False):
    """Push a chain of transitions with states labelled by index."""
    out = []
    for k, r in enumerate(rewards):
        terminal = terminal_last and k == len(rewards) - 1
        out.extend(
            buf.push(
                np.array([float(k)]),
                k % 3,
                r,
                np.array([float(k + 1)]),
                terminal,
            )
        )
    return out


class TestNStepBuffer:
    def test_one_step_passthrough(self):
        buf = NStepTransitionBuffer(1, 0.9)
        out = _push_chain(buf, [1.0, 2.0])
        assert len(out) == 2
        assert out[0].reward == 1.0
        assert out[0].discount == pytest.approx(0.9)

    def test_three_step_accumulation(self):
        buf = NStepTransitionBuffer(3, 0.5)
        out = _push_chain(buf, [1.0, 1.0, 1.0, 1.0])
        # Windows complete at steps 3 and 4.
        assert len(out) == 2
        assert out[0].reward == pytest.approx(1 + 0.5 + 0.25)
        assert out[0].discount == pytest.approx(0.5**3)
        assert out[0].state[0] == 0.0
        assert out[0].next_state[0] == 3.0

    def test_terminal_drains_all_suffixes(self):
        buf = NStepTransitionBuffer(3, 1.0)
        out = _push_chain(buf, [1.0, 1.0], terminal_last=True)
        # Both stored starts emit, all marked terminal at the end.
        assert len(out) == 2
        assert all(t.terminal for t in out)
        assert out[0].reward == pytest.approx(2.0)  # from t=0, horizon 2
        assert out[1].reward == pytest.approx(1.0)  # from t=1, horizon 1

    def test_flush_truncated_tail(self):
        buf = NStepTransitionBuffer(4, 0.9)
        live = _push_chain(buf, [1.0, 1.0])
        assert live == []
        tail = buf.flush()
        assert len(tail) == 2
        assert not tail[0].terminal  # truncation, not termination
        assert tail[0].discount == pytest.approx(0.9**2)
        assert len(buf) == 0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            NStepTransitionBuffer(0, 0.9)
        with pytest.raises(ValueError):
            NStepTransitionBuffer(2, 1.5)

    @given(
        st.integers(1, 5),
        st.lists(st.floats(-1, 1), min_size=1, max_size=20),
    )
    @settings(max_examples=30, deadline=None)
    def test_total_transition_count_conserved(self, n, rewards):
        # Every pushed step starts exactly one emitted transition once
        # the episode is flushed.
        buf = NStepTransitionBuffer(n, 0.9)
        out = _push_chain(buf, rewards)
        out += buf.flush()
        assert len(out) == len(rewards)

    @given(st.integers(1, 4))
    @settings(max_examples=10, deadline=None)
    def test_reward_accumulation_matches_manual(self, n):
        gamma = 0.8
        rewards = [1.0, -1.0, 0.5, 2.0, -0.5]
        buf = NStepTransitionBuffer(n, gamma)
        out = _push_chain(buf, rewards)
        out += buf.flush()
        for t in out:
            start = int(t.state[0])
            horizon = round(np.log(t.discount) / np.log(gamma)) if gamma != 1 else None
            expected = sum(
                gamma**k * rewards[start + k]
                for k in range(min(n, len(rewards) - start))
            )
            assert t.reward == pytest.approx(expected)


class TestNStepAgent:
    def _agent(self, n_step) -> DQNAgent:
        return DQNAgent(
            AgentConfig(
                state_dim=2,
                n_actions=2,
                hidden_sizes=(8,),
                replay_capacity=256,
                minibatch_size=4,
                initial_exploration_steps=0,
                epsilon_decay=0.05,
                learning_rate=0.01,
                n_step=3,
                gamma=0.9,
                seed=0,
            )
        )

    def test_trains_through_trainer(self):
        env = CountingEnv(horizon=8)
        agent = self._agent(3)
        history = Trainer(
            env, agent, episodes=6, max_steps_per_episode=8
        ).run()
        assert agent.learn_steps > 0
        # Replay holds exactly one transition per environment step
        # (count conservation through the n-step buffer).
        assert len(agent.replay) == history.total_steps

    def test_stored_discounts_vary(self):
        env = CountingEnv(horizon=5)
        agent = self._agent(3)
        Trainer(env, agent, episodes=2, max_steps_per_episode=5).run()
        discounts = agent.replay._discounts[: len(agent.replay)]
        # Full windows at gamma^3 plus truncated tails at gamma^1..2.
        assert len(np.unique(np.round(discounts, 10))) >= 2

    def test_invalid_n_step(self):
        with pytest.raises(ValueError):
            AgentConfig(state_dim=2, n_actions=2, n_step=0)


class TestRainbowVariant:
    def test_from_run_config_flags(self):
        ac = AgentConfig.from_run_config(
            PAPER_CONFIG.replace(variant="rainbow"), 10, 4
        )
        assert ac.double and ac.dueling and ac.prioritized
        assert ac.n_step == 3

    def test_rainbow_trains_end_to_end(self, tiny_run_config):
        from repro.experiments.figure4 import run_figure4_experiment

        result = run_figure4_experiment(
            tiny_run_config.replace(variant="rainbow")
        )
        assert len(result.history.episodes) == tiny_run_config.episodes
        assert result.series.size > 0
