"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "RMSprop" in out
        assert "match the published Table 1" in out

    def test_geometry(self, capsys):
        code = main(
            ["geometry", "--receptor-atoms", "150", "--ligand-atoms", "10"]
        )
        assert code == 0
        assert "crystal pose" in capsys.readouterr().out

    def test_figure4_tiny(self, capsys):
        code = main(
            ["figure4", "--episodes", "4", "--max-steps", "15", "--seed", "1"]
        )
        assert code == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_figure4_variant(self, capsys):
        code = main(
            [
                "figure4",
                "--episodes", "3",
                "--max-steps", "10",
                "--variant", "ddqn",
            ]
        )
        assert code == 0

    def test_comm_ablation(self, capsys):
        assert main(["comm-ablation", "--steps", "20"]) == 0
        assert "steps/sec" in capsys.readouterr().out

    def test_screen(self, capsys):
        code = main(
            [
                "screen",
                "--ligands", "2",
                "--budget", "40",
                "--strategy", "random",
            ]
        )
        assert code == 0
        assert "LIG00000" in capsys.readouterr().out

    def test_blind(self, capsys):
        code = main(["blind", "--spots", "3", "--budget", "40", "--workers", "1"])
        assert code == 0
        assert "Blind docking" in capsys.readouterr().out

    def test_baselines(self, capsys):
        assert main(["baselines", "--budget", "150"]) == 0
        assert "dqn-docking" in capsys.readouterr().out

    def test_reward_ablation(self, capsys):
        code = main(
            ["reward-ablation", "--episodes", "3", "--schemes", "sign"]
        )
        assert code == 0
        assert "reward scheme" in capsys.readouterr().out

    def test_sweep(self, capsys):
        code = main(
            ["sweep", "gamma", "0.5", "0.99", "--episodes", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Sweep over gamma" in out
        assert "best setting" in out

    def test_curriculum(self, capsys, tmp_path):
        code = main(
            [
                "curriculum",
                "--complexes", "2",
                "--episodes", "2",
                "--eval-episodes", "1",
                "--backend", "auto",
                "--log-dir", str(tmp_path / "run"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Curriculum transfer" in out
        # The vector backend's telemetry landed in the run directory.
        metrics = (tmp_path / "run" / "metrics.csv").read_text()
        assert "vector_env/worker_restarts" in metrics

    def test_sweep_value_parsing(self):
        from repro.cli import _parse_value

        assert _parse_value("3") == 3
        assert _parse_value("0.5") == 0.5
        assert _parse_value("relu") == "relu"
