"""Edge cases of the transition-transport layer (:mod:`repro.env.comm`).

The :class:`TransitionRing` is the load-bearing piece of the
actor/learner runtime: a lock-free SPSC ring whose correctness rests on
the write-payload-then-bump-head discipline.  These tests pin its
contract at the boundaries -- zero-length payloads, wraparound, full
rings (backpressure), timeout-then-recover sequences, and cross-process
visibility -- plus the :class:`SharedSlotComm` slot-reuse guarantee
after an ``AsyncVectorEnv`` worker respawn.
"""

import multiprocessing as mp
import time

import numpy as np
import pytest

from repro.env.comm import SharedSlotComm, TransitionRing
from repro.env.factory import make_vector_env

from tests.test_rl_trainer import CountingEnv

fork_required = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="shared-memory transports need a fork-capable platform",
)


def _push_simple(ring, k, state_dim=2, **kw):
    state = np.full(state_dim, float(k))
    return ring.push(
        state, state + 1.0, action=k, reward=float(k), done=False, **kw
    )


class TestTransitionRingBasics:
    def test_fifo_order_and_payload_roundtrip(self):
        ring = TransitionRing(state_dim=3, capacity=8)
        for k in range(5):
            ok = ring.push(
                np.arange(3) + k,
                np.arange(3) + k + 10,
                action=k,
                reward=0.5 * k,
                done=(k == 4),
                score=100.0 + k,
                max_q=-1.0 * k,
                crystal_rmsd=2.0 + k,
            )
            assert ok
        assert len(ring) == 5
        records = ring.drain()
        assert len(records) == 5 and len(ring) == 0
        for k, rec in enumerate(records):
            np.testing.assert_array_equal(rec.state, np.arange(3) + k)
            np.testing.assert_array_equal(
                rec.next_state, np.arange(3) + k + 10
            )
            assert rec.action == k
            assert rec.reward == 0.5 * k
            assert rec.done is (k == 4)
            assert rec.score == 100.0 + k
            assert rec.max_q == -1.0 * k
            assert rec.crystal_rmsd == 2.0 + k

    def test_wraparound_preserves_order(self):
        ring = TransitionRing(state_dim=1, capacity=3)
        seen = []
        for k in range(10):
            assert _push_simple(ring, k, state_dim=1)
            if len(ring) == ring.capacity:
                seen.extend(r.action for r in ring.drain(max_items=2))
        seen.extend(r.action for r in ring.drain())
        assert seen == list(range(10))
        assert ring.pushed == 10 and ring.drained == 10

    def test_pop_single_and_empty(self):
        ring = TransitionRing(state_dim=2, capacity=4)
        assert ring.pop() is None
        assert ring.drain() == []
        _push_simple(ring, 7)
        rec = ring.pop()
        assert rec is not None and rec.action == 7
        assert ring.pop() is None

    def test_drained_records_are_copies(self):
        ring = TransitionRing(state_dim=2, capacity=1)
        _push_simple(ring, 1)
        rec = ring.drain()[0]
        _push_simple(ring, 2)  # reuses the same slot
        np.testing.assert_array_equal(rec.state, [1.0, 1.0])

    def test_zero_length_payloads(self):
        # state_dim=0 is a valid degenerate ring (pure reward stream).
        ring = TransitionRing(state_dim=0, capacity=4)
        drained = []
        for k in range(6):
            assert ring.push([], [], action=k, reward=float(k), done=False)
            if len(ring) == ring.capacity:
                drained.extend(ring.drain(max_items=2))
        drained.extend(ring.drain())
        assert [r.action for r in drained] == list(range(6))
        assert all(r.state.shape == (0,) for r in drained)
        assert ring.pushed == 6

    def test_float32_ring_keeps_dtype(self):
        ring = TransitionRing(
            state_dim=2, capacity=2, state_dtype=np.float32
        )
        ring.push([1.5, 2.5], [3.5, 4.5], action=0, reward=0.0, done=False)
        rec = ring.pop()
        assert rec.state.dtype == np.float32
        np.testing.assert_array_equal(rec.state, [1.5, 2.5])

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            TransitionRing(state_dim=2, capacity=0)
        with pytest.raises(ValueError):
            TransitionRing(state_dim=-1, capacity=2)
        with pytest.raises(TypeError):
            TransitionRing(state_dim=2, capacity=2, state_dtype=np.int32)
        ring = TransitionRing(state_dim=2, capacity=2)
        with pytest.raises(ValueError):
            ring.push([1.0], [1.0, 2.0], action=0, reward=0.0, done=False)
        with pytest.raises(ValueError):
            ring.push(
                [1.0, 2.0], [1.0, 2.0, 3.0],
                action=0, reward=0.0, done=False,
            )


class TestTransitionRingBackpressure:
    def test_full_push_times_out_then_recovers(self):
        ring = TransitionRing(state_dim=2, capacity=2)
        assert _push_simple(ring, 0)
        assert _push_simple(ring, 1)
        # Full: a bounded push must report failure, not block forever.
        t0 = time.monotonic()
        assert not _push_simple(ring, 2, timeout=0.05)
        assert time.monotonic() - t0 < 5.0
        assert ring.full_waits == 1
        # Recover: drain one slot and the same push succeeds, with the
        # ring's counters and FIFO order intact.
        assert ring.pop().action == 0
        assert _push_simple(ring, 2, timeout=0.05)
        assert [r.action for r in ring.drain()] == [1, 2]
        assert ring.pushed == 3 and ring.drained == 3

    def test_stop_callback_aborts_blocked_push(self):
        ring = TransitionRing(state_dim=1, capacity=1)
        assert _push_simple(ring, 0, state_dim=1)
        stopped = {"flag": False}

        def stop():
            stopped["flag"] = True
            return True

        assert not _push_simple(ring, 1, state_dim=1, stop=stop)
        assert stopped["flag"]
        # The buffered record is untouched by the aborted push.
        assert ring.pop().action == 0

    def test_full_waits_counts_one_per_blocked_push(self):
        ring = TransitionRing(state_dim=1, capacity=1)
        _push_simple(ring, 0, state_dim=1)
        for _ in range(3):
            _push_simple(ring, 9, state_dim=1, timeout=0.01)
        assert ring.full_waits == 3


def _producer_main(ring, n):
    for k in range(n):
        ring.push(
            [float(k), float(2 * k)],
            [float(k + 1), float(2 * k + 1)],
            action=k,
            reward=float(k),
            done=(k % 3 == 0),
            score=float(1000 + k),
            timeout=30.0,
        )


@fork_required
class TestTransitionRingCrossProcess:
    def test_fork_producer_parent_consumer(self):
        # Capacity far below the push count forces wraparound *and*
        # live backpressure while both processes run.
        ring = TransitionRing(state_dim=2, capacity=4)
        n = 50
        ctx = mp.get_context("fork")
        proc = ctx.Process(target=_producer_main, args=(ring, n))
        proc.start()
        try:
            records = []
            deadline = time.monotonic() + 30.0
            while len(records) < n:
                records.extend(ring.drain())
                if time.monotonic() > deadline:  # pragma: no cover
                    pytest.fail("consumer timed out")
                time.sleep(1e-4)
        finally:
            proc.join(10.0)
            if proc.is_alive():  # pragma: no cover
                proc.kill()
        assert [r.action for r in records] == list(range(n))
        for k, rec in enumerate(records):
            np.testing.assert_array_equal(rec.state, [k, 2 * k])
            assert rec.done is (k % 3 == 0)
            assert rec.score == 1000 + k


class TestSharedSlotComm:
    def test_slot_roundtrip_and_validation(self):
        block = np.zeros((2, 3))
        scores = np.zeros(2)
        comm = SharedSlotComm(block[1], scores, index=1)
        state, score = comm.exchange(np.array([1.0, 2.0, 3.0]), 7.5)
        np.testing.assert_array_equal(block[1], [1.0, 2.0, 3.0])
        assert scores[1] == 7.5 and score == 7.5
        with pytest.raises(ValueError):
            comm.exchange(np.array([1.0, 2.0]), 0.0)
        with pytest.raises(ValueError):
            SharedSlotComm(block, scores, index=0)


class _CrashOnNine(CountingEnv):
    """Counting env that hard-kills its own worker process on action 9."""

    def __init__(self):
        super().__init__(horizon=100)
        self.n_actions = 10

    def step(self, action):
        if action == 9:
            import os
            import signal

            os.kill(os.getpid(), signal.SIGKILL)
        return super().step(action)


@fork_required
class TestSlotReuseAfterRespawn:
    def test_respawned_worker_reuses_its_state_slot(self):
        # The respawned worker inherits the *same* shared-memory slot
        # as its predecessor; post-respawn steps must land in it with
        # correct values (no stale payload from the dead worker, no
        # cross-slot bleed into healthy neighbours).
        with make_vector_env(
            env_fns=[_CrashOnNine, _CrashOnNine],
            backend="async",
            step_timeout=20.0,
        ) as venv:
            venv.reset()
            venv.step([0, 0])  # both at t=1
            states, _r, dones, infos = venv.step([9, 0])
            assert venv.worker_restarts == 1
            assert dones[0] and infos[0]["worker_restarted"]
            # Slot 0: the respawned env's reset state, not the dead
            # worker's last payload.  Slot 1: untouched neighbour.
            np.testing.assert_array_equal(states[0], [0.0, 0.0])
            np.testing.assert_array_equal(states[1], [2.0, 2.0])
            # Timeout-then-recover at the vector level: the replacement
            # worker keeps writing through the reused slot.
            for t in range(1, 4):
                states, _r, dones, _i = venv.step([0, 0])
                assert not dones.any()
                np.testing.assert_array_equal(
                    states[0], [float(t), float(t)]
                )
