"""Losses, optimizers, checkpoints: values, convergence, persistence."""

import numpy as np
import pytest

from repro.nn.checkpoints import load_network, save_network
from repro.nn.losses import HuberLoss, MSELoss, make_loss
from repro.nn.network import build_mlp
from repro.nn.optimizers import SGD, Adam, RMSprop, make_optimizer


class TestMSELoss:
    def test_value(self):
        v, g = MSELoss()(np.array([1.0, 2.0]), np.array([0.0, 0.0]))
        assert v == pytest.approx((1 + 4) / 2)
        np.testing.assert_allclose(g, [1.0, 2.0])

    def test_zero_at_target(self):
        v, g = MSELoss()(np.array([3.0]), np.array([3.0]))
        assert v == 0.0 and g[0] == 0.0

    def test_weights(self):
        v, _ = MSELoss()(
            np.array([1.0, 1.0]), np.zeros(2), weights=np.array([2.0, 0.0])
        )
        assert v == pytest.approx(1.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MSELoss()(np.zeros(2), np.zeros(3))


class TestHuberLoss:
    def test_quadratic_core(self):
        v, g = HuberLoss(1.0)(np.array([0.5]), np.array([0.0]))
        assert v == pytest.approx(0.125)
        assert g[0] == pytest.approx(0.5)

    def test_linear_tail(self):
        v, g = HuberLoss(1.0)(np.array([3.0]), np.array([0.0]))
        assert v == pytest.approx(1.0 * (3.0 - 0.5))
        assert g[0] == pytest.approx(1.0)

    def test_continuous_at_delta(self):
        lo, _ = HuberLoss(1.0)(np.array([0.999999]), np.array([0.0]))
        hi, _ = HuberLoss(1.0)(np.array([1.000001]), np.array([0.0]))
        assert hi == pytest.approx(lo, rel=1e-4)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            HuberLoss(0.0)

    def test_factory(self):
        assert isinstance(make_loss("mse"), MSELoss)
        assert isinstance(make_loss("huber", delta=2.0), HuberLoss)
        with pytest.raises(ValueError):
            make_loss("hinge")


def _quadratic_problem(opt_cls, lr, steps=200, **kw):
    """Minimize ||p||^2 from a fixed start; returns the final norm."""
    p = np.array([3.0, -2.0, 1.0])
    g = np.zeros(3)
    opt = opt_cls([p], [g], lr, **kw)
    for _ in range(steps):
        g[...] = 2 * p
        opt.step()
    return float(np.linalg.norm(p))


class TestOptimizers:
    def test_sgd_converges(self):
        assert _quadratic_problem(SGD, 0.1) < 1e-6

    def test_sgd_momentum_converges(self):
        assert _quadratic_problem(SGD, 0.05, momentum=0.9) < 1e-4

    def test_rmsprop_converges(self):
        assert _quadratic_problem(RMSprop, 0.05, steps=600) < 0.05

    def test_adam_converges(self):
        assert _quadratic_problem(Adam, 0.1, steps=600) < 1e-4

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([np.zeros(1)], [np.zeros(1)], lr=0.0)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([np.zeros(1)], [np.zeros(1)], 0.1, momentum=1.0)

    def test_misaligned_params_grads(self):
        with pytest.raises(ValueError):
            SGD([np.zeros(1)], [], 0.1)

    def test_gradient_clipping(self):
        p = np.array([0.0])
        g = np.array([1000.0])
        opt = SGD([p], [g], lr=1.0, max_grad_norm=1.0)
        opt.step()
        assert p[0] == pytest.approx(-1.0)

    def test_clipping_leaves_small_grads(self):
        p = np.array([0.0])
        g = np.array([0.5])
        SGD([p], [g], lr=1.0, max_grad_norm=1.0).step()
        assert p[0] == pytest.approx(-0.5)

    def test_factory(self):
        p, g = [np.zeros(2)], [np.zeros(2)]
        assert isinstance(make_optimizer("rmsprop", p, g, 0.001), RMSprop)
        assert isinstance(make_optimizer("adam", p, g, 0.001), Adam)
        assert isinstance(make_optimizer("sgd", p, g, 0.001), SGD)
        with pytest.raises(ValueError):
            make_optimizer("lbfgs", p, g, 0.001)

    def test_updates_in_place(self):
        p = np.array([1.0])
        g = np.array([1.0])
        opt = SGD([p], [g], lr=0.5)
        ref = p  # same object
        opt.step()
        assert ref[0] == pytest.approx(0.5)


class TestNetworkRegression:
    def test_rmsprop_fits_toy_function(self, rng):
        net = build_mlp(2, (24, 24), 1, rng=0)
        opt = RMSprop(net.params(), net.grads(), lr=1e-3)
        loss = MSELoss()
        X = rng.normal(size=(256, 2))
        Y = (X[:, :1] * X[:, 1:2])  # product: needs the hidden layer
        initial = loss(net.predict(X), Y)[0]
        for _ in range(400):
            idx = rng.integers(0, 256, size=32)
            net.zero_grad()
            pred = net.forward(X[idx])
            _v, grad = loss(pred, Y[idx])
            net.backward(grad)
            opt.step()
        final = loss(net.predict(X), Y)[0]
        assert final < 0.3 * initial


class TestCheckpoints:
    def test_roundtrip(self, tmp_path, rng):
        net = build_mlp(4, (6,), 2, rng=0)
        path = tmp_path / "w.npz"
        save_network(net, path)
        other = build_mlp(4, (6,), 2, rng=99)
        load_network(other, path)
        x = rng.normal(size=(3, 4))
        np.testing.assert_allclose(net.predict(x), other.predict(x))

    def test_shape_mismatch_leaves_net_untouched(self, tmp_path, rng):
        net = build_mlp(4, (6,), 2, rng=0)
        path = tmp_path / "w.npz"
        save_network(net, path)
        other = build_mlp(4, (7,), 2, rng=1)
        x = rng.normal(size=(2, 4))
        before = other.predict(x)
        with pytest.raises(ValueError):
            load_network(other, path)
        np.testing.assert_allclose(other.predict(x), before)

    def test_wrong_array_count_rejected(self, tmp_path):
        net = build_mlp(4, (6,), 2, rng=0)
        path = tmp_path / "w.npz"
        save_network(net, path)
        deeper = build_mlp(4, (6, 6), 2, rng=0)
        with pytest.raises(ValueError):
            load_network(deeper, path)
