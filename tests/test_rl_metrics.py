"""Training-history docking metrics (RMSD tracking, success rate)."""

import numpy as np
import pytest

from repro.rl.trainer import EpisodeStats, TrainingHistory


def _stats(rmsd, episode=0):
    return EpisodeStats(
        episode=episode,
        steps=5,
        total_reward=0.0,
        avg_max_q=1.0,
        best_score=0.0,
        final_score=0.0,
        epsilon=0.1,
        mean_loss=0.0,
        learning_active=True,
        termination="x",
        min_crystal_rmsd=rmsd,
    )


class TestRmsdSeries:
    def test_series_values(self):
        h = TrainingHistory(episodes=[_stats(1.5), _stats(3.0)])
        np.testing.assert_allclose(h.rmsd_series(), [1.5, 3.0])

    def test_success_rate(self):
        h = TrainingHistory(
            episodes=[_stats(1.0), _stats(1.9), _stats(2.5), _stats(8.0)]
        )
        assert h.docking_success_rate(2.0) == pytest.approx(0.5)

    def test_success_rate_ignores_nan(self):
        h = TrainingHistory(
            episodes=[_stats(float("nan")), _stats(1.0)]
        )
        assert h.docking_success_rate(2.0) == pytest.approx(1.0)

    def test_success_rate_all_nan(self):
        h = TrainingHistory(episodes=[_stats(float("nan"))])
        assert h.docking_success_rate() == 0.0

    def test_empty_history(self):
        assert TrainingHistory().docking_success_rate() == 0.0


class TestRmsdFromRealEnv:
    def test_trainer_records_rmsd(self, tiny_run_config):
        from repro.experiments.figure4 import run_figure4_experiment

        result = run_figure4_experiment(tiny_run_config)
        rmsd = result.history.rmsd_series()
        assert rmsd.shape == (tiny_run_config.episodes,)
        assert np.isfinite(rmsd).all()
        assert (rmsd[np.isfinite(rmsd)] > 0).all()

    def test_rmsd_decreases_when_moving_to_crystal(self, env):
        env.reset()
        d0 = env.step(5)[3]["crystal_rmsd"]  # -z: toward the pocket
        d1 = env.step(5)[3]["crystal_rmsd"]
        assert d1 < d0
