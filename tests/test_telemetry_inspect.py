"""``repro inspect``: golden rendering and the CLI round trip."""

import json

import pytest

from repro.cli import main
from repro.telemetry.summary import load_run, render_summary


def make_golden_run(root):
    """A fully deterministic run directory (no live timestamps)."""
    d = root / "golden-run"
    d.mkdir()
    manifest = {
        "run_id": "figure4-20260101-000000-abc123",
        "command": "figure4",
        "seed": 0,
        "config": {"episodes": 2},
        "version": "0.0-test",
        "python_version": "3.11.0",
        "platform": "Linux-x86_64",
        "numpy_version": "1.26.0",
        "git_sha": "0123456789abcdef0123456789abcdef01234567",
        "started_at": "2026-01-01T00:00:00Z",
        "started_unix": 0.0,
        "finished_at": "2026-01-01T00:00:05Z",
        "duration_seconds": 5.0,
        "status": "completed",
        "extra": {},
    }
    (d / "manifest.json").write_text(json.dumps(manifest, indent=2) + "\n")
    events = [
        {"event": "run_start", "t": 0.0, "run_id": manifest["run_id"],
         "command": "figure4", "seed": 0},
        {"event": "step", "t": 0.1, "episode": 0, "step": 0,
         "global_step": 1, "action": 3, "reward": 1.0, "score": -12.0,
         "max_q": 1.0, "epsilon": 0.95, "loss": None, "done": False},
        {"event": "episode_end", "t": 1.0, "episode": 0, "steps": 5,
         "total_reward": 3.0, "avg_max_q": 1.5, "best_score": -10.0,
         "final_score": -11.0, "epsilon": 0.9, "mean_loss": 0.25,
         "learning_active": True, "termination": "time-limit",
         "min_crystal_rmsd": None},
        {"event": "episode_end", "t": 2.0, "episode": 1, "steps": 4,
         "total_reward": -1.0, "avg_max_q": 2.5, "best_score": -8.0,
         "final_score": -8.0, "epsilon": 0.8, "mean_loss": 0.125,
         "learning_active": True, "termination": "max-score",
         "min_crystal_rmsd": None},
        {"event": "run_end", "t": 5.0, "status": "completed"},
    ]
    with open(d / "events.jsonl", "w") as fh:
        for e in events:
            fh.write(json.dumps(e) + "\n")
    rows = [
        "name,kind,count,value,mean,std,min,max,p50,p90,p99",
        "episodes,counter,2,2.0,,,,,,,",
        "epsilon,gauge,2,0.8,,,,,,,",
        "reward,histogram,9,,0.2222,0.9162,-1.0,1.0,0.5,1.0,1.0",
        "span/train,span,1,3.0,3.0,,,,,,",
        "span/train/act,span,9,0.9,0.1,,,,,,",
        "span/train/env-step,span,9,1.8,0.2,,,,,,",
    ]
    (d / "metrics.csv").write_text("\n".join(rows) + "\n")
    return d


GOLDEN = """\
# Run figure4-20260101-000000-abc123
run `figure4-20260101-000000-abc123`, repro 0.0-test, seed 0, \
git `0123456789ab`, started 2026-01-01T00:00:00Z, status completed
command: figure4   python 3.11.0 on Linux-x86_64   numpy 1.26.0
finished: 2026-01-01T00:00:05Z   duration: 5.0s
events: 5 total, 1 step records

Episodes
+----+-------+--------+-----------+------------+-------+--------+-------------+
| ep | steps | reward | avg max Q | best score |   eps |   loss | termination |
+----+-------+--------+-----------+------------+-------+--------+-------------+
|  0 |     5 |    3.0 |     1.500 |     -10.00 | 0.900 | 0.2500 | time-limit  |
|  1 |     4 |   -1.0 |     2.500 |      -8.00 | 0.800 | 0.1250 | max-score   |
+----+-------+--------+-----------+------------+-------+--------+-------------+

Figure 4 series (2 learning-active episodes): first 1.500  peak 2.500  \
last 2.500
Q curve: ▁█

Span breakdown
+------------+-------+---------+-----------+
| span       | calls | total s |   mean ms |
+------------+-------+---------+-----------+
| train      |     1 |  3.0000 | 3000.0000 |
|   act      |     9 |  0.9000 |  100.0000 |
|   env-step |     9 |  1.8000 |  200.0000 |
+------------+-------+---------+-----------+

Metrics
+----------+-----------+-------+-------+--------+-----+-----+-----+-----+
| metric   | kind      | count | value |   mean | min | max | p50 | p99 |
+----------+-----------+-------+-------+--------+-----+-----+-----+-----+
| episodes | counter   |     2 |     2 |      - |   - |   - |   - |   - |
| epsilon  | gauge     |     2 |   0.8 |      - |   - |   - |   - |   - |
| reward   | histogram |     9 |     - | 0.2222 |  -1 |   1 | 0.5 |   1 |
+----------+-----------+-------+-------+--------+-----+-----+-----+-----+"""


class TestRenderSummary:
    def test_golden_output(self, tmp_path):
        d = make_golden_run(tmp_path)
        assert render_summary(d) == GOLDEN

    def test_manifest_only_run_renders(self, tmp_path):
        # A crashed run may leave just the manifest behind.
        d = make_golden_run(tmp_path)
        (d / "events.jsonl").unlink()
        (d / "metrics.csv").unlink()
        out = render_summary(d)
        assert "(no episode records)" in out
        assert "(no span records)" in out
        assert "(no metrics snapshot)" in out

    def test_span_fallback_from_events(self, tmp_path):
        # No metrics.csv, but the event log carries a span_summary.
        d = make_golden_run(tmp_path)
        (d / "metrics.csv").unlink()
        with open(d / "events.jsonl", "a") as fh:
            fh.write(json.dumps({
                "event": "span_summary",
                "t": 4.9,
                "spans": [{
                    "path": "train", "name": "train", "parent": None,
                    "count": 1, "total_seconds": 3.0,
                    "mean_seconds": 3.0, "self_seconds": 0.3,
                }],
            }) + "\n")
        out = render_summary(d)
        assert "Span breakdown" in out
        assert "train" in out

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_run(tmp_path)

    def test_bench_artifact_rendered(self, tmp_path):
        # A BENCH_train_step.json dropped next to the run files gets its
        # own table; absent artifacts leave the golden output untouched.
        d = make_golden_run(tmp_path)
        baseline = render_summary(d)
        payload = {
            "state_dim": 16599,
            "batch_size": 32,
            "learn_speedup": 3.957,
            "replay_bytes_compact": 440_534_748,
        }
        (d / "BENCH_train_step.json").write_text(
            json.dumps(payload) + "\n"
        )
        out = render_summary(d)
        assert out.startswith(baseline)
        assert "BENCH_train_step.json" in out
        assert "learn_speedup" in out
        assert "3.957" in out
        assert "440,534,748" in out

    def test_score_step_artifact_rendered(self, tmp_path):
        # The scoring bench's artifact is registered in BENCH_ARTIFACTS
        # and rendered like the others.
        d = make_golden_run(tmp_path)
        payload = {
            "incremental_steps_per_second": 1055.3,
            "speedup_incremental_vs_exact": 8.9,
            "rebuild_rate": 0.166,
        }
        (d / "BENCH_score_step.json").write_text(
            json.dumps(payload) + "\n"
        )
        out = render_summary(d)
        assert "BENCH_score_step.json" in out
        assert "speedup_incremental_vs_exact" in out
        assert "8.9" in out

    def test_unreadable_bench_artifact_noted(self, tmp_path):
        d = make_golden_run(tmp_path)
        (d / "BENCH_vector_env.json").write_text("{not json")
        out = render_summary(d)
        assert "(BENCH_vector_env.json: unreadable)" in out


class TestLoadRun:
    def test_events_of_filters(self, tmp_path):
        record = load_run(make_golden_run(tmp_path))
        assert len(record.events_of("episode_end")) == 2
        assert record.events_of("nope") == []
        assert record.manifest.command == "figure4"
        assert len(record.metrics) == 6


class TestCli:
    def test_figure4_then_inspect(self, tmp_path, capsys):
        d = tmp_path / "run"
        code = main([
            "figure4", "--episodes", "2", "--max-steps", "5",
            "--log-dir", str(d),
        ])
        assert code == 0
        assert (d / "manifest.json").exists()
        assert (d / "events.jsonl").exists()
        assert (d / "metrics.csv").exists()
        capsys.readouterr()

        assert main(["inspect", str(d)]) == 0
        out = capsys.readouterr().out
        assert "Episodes" in out
        assert "Span breakdown" in out
        assert "engine-step" in out  # deep spans reached the snapshot
        assert "status completed" in out

    def test_inspect_golden_via_cli(self, tmp_path, capsys):
        d = make_golden_run(tmp_path)
        assert main(["inspect", str(d)]) == 0
        assert capsys.readouterr().out.rstrip("\n") == GOLDEN

    def test_inspect_missing_dir_errors(self, tmp_path, capsys):
        assert main(["inspect", str(tmp_path / "nope")]) == 1
        assert "error:" in capsys.readouterr().err
