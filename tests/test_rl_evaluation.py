"""Policy evaluation protocol and the periodic-evaluation callback."""

import numpy as np
import pytest

from repro.rl.evaluation import (
    EvaluationResult,
    PeriodicEvaluator,
    evaluate_policy,
)
from repro.rl.trainer import Trainer

from tests.test_rl_trainer import CountingEnv, tiny_agent


class RmsdEnv(CountingEnv):
    """CountingEnv that also reports a crystal RMSD shrinking with score."""

    def step(self, action):
        state, reward, done, info = super().step(action)
        info["crystal_rmsd"] = max(0.5, 10.0 - info["score"])
        return state, reward, done, info


class TestEvaluatePolicy:
    def test_aggregates(self):
        env = RmsdEnv(horizon=6)
        agent = tiny_agent()
        result = evaluate_policy(
            env, agent, episodes=3, max_steps=6, epsilon=0.0, rng=0
        )
        assert result.episodes == 3
        assert result.mean_episode_length == 6.0
        assert np.isfinite(result.mean_best_score)
        assert result.max_best_score >= result.mean_best_score
        assert np.isfinite(result.mean_min_rmsd)

    def test_success_rate_threshold(self):
        env = RmsdEnv(horizon=12)
        agent = tiny_agent()
        # Train so the greedy policy pushes score up -> rmsd down to 0.5.
        Trainer(env, agent, episodes=25, max_steps_per_episode=12).run()
        result = evaluate_policy(
            env, agent, episodes=4, max_steps=12, epsilon=0.0,
            rmsd_threshold=2.0, rng=0,
        )
        assert result.success_rate == 1.0

    def test_epsilon_randomness_reproducible(self):
        env = RmsdEnv()
        agent = tiny_agent()
        a = evaluate_policy(env, agent, episodes=2, max_steps=8, epsilon=0.5, rng=7)
        b = evaluate_policy(env, agent, episodes=2, max_steps=8, epsilon=0.5, rng=7)
        assert a == b

    def test_invalid_args(self):
        env = RmsdEnv()
        agent = tiny_agent()
        with pytest.raises(ValueError):
            evaluate_policy(env, agent, episodes=0)
        with pytest.raises(ValueError):
            evaluate_policy(env, agent, epsilon=1.5)

    def test_summary_string(self):
        r = EvaluationResult(2, 1.0, 2.0, 5.0, 1.5, 0.5)
        assert "success@2A" in r.summary() or "success" in r.summary()

    def test_on_real_docking_env(self, env):
        agent = tiny_agent(state_dim=env.state_dim, n_actions=env.n_actions)
        result = evaluate_policy(env, agent, episodes=2, max_steps=10, rng=1)
        assert np.isfinite(result.mean_best_score)
        assert np.isfinite(result.mean_min_rmsd)


class TestPeriodicEvaluator:
    def test_fires_on_schedule(self):
        env = RmsdEnv(horizon=5)
        agent = tiny_agent()
        evaluator = PeriodicEvaluator(
            env, agent, every=4, episodes=2, max_steps=5
        )
        Trainer(
            env, agent, episodes=12, max_steps_per_episode=5,
            on_episode_end=evaluator,
        ).run()
        assert [e for e, _r in evaluator.results] == [3, 7, 11]
        assert evaluator.score_series().shape == (3,)

    def test_invalid_every(self):
        with pytest.raises(ValueError):
            PeriodicEvaluator(RmsdEnv(), tiny_agent(), every=0)
