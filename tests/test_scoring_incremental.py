"""Incremental Verlet-list scorer: equivalence, rebuild cadence, plumbing.

The load-bearing properties (see ``repro/scoring/incremental.py``):

- trajectory equivalence with the cutoff reference *across rebuild
  boundaries* to the documented :data:`DRIFT_REL_BOUND`;
- bit-stable cache independence — a warm scorer and a fresh scorer
  agree bitwise at every pose (checkpoint safety: the pair list is
  derived state);
- rebuilds happen exactly when the max ligand displacement since the
  last build exceeds skin/2;
- end-to-end wiring: factory, config, envs, CLI, telemetry, and
  interrupt/resume through the figure4 trainer stack.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.config import ci_scale_config
from repro.env.docking_env import DockingEnv, make_env
from repro.env.flexible_env import make_flexible_env
from repro.metadock.engine import MetadockEngine
from repro.scoring.incremental import (
    ACTIVE_PAIRS_METRIC,
    DEFAULT_SKIN,
    DRIFT_REL_BOUND,
    REBUILDS_METRIC,
    IncrementalScorer,
)
from repro.scoring.neighborlist import CellList, query_pairs
from repro.scoring.scorers import (
    SCORING_METHODS,
    CutoffScorer,
    ExactScorer,
    GridScorer,
    make_scorer,
)


@pytest.fixture(scope="module")
def pair(small_complex):
    lig = small_complex.ligand_crystal
    template = lig.with_coords(lig.coords - lig.centroid())
    return small_complex.receptor, template, lig.coords


def _fresh(rec, template, **kw) -> IncrementalScorer:
    kw.setdefault("cutoff", 10.0)
    kw.setdefault("skin", 2.0)
    return IncrementalScorer(rec, template, **kw)


# ---------------------------------------------------------------------------
# vectorized multi-center query


class TestQueryPairs:
    def test_matches_brute_force(self, rng):
        for _ in range(25):
            n = int(rng.integers(0, 120))
            pts = rng.normal(size=(n, 3)) * rng.uniform(1.0, 8.0)
            cl = CellList(pts, cell_size=float(rng.uniform(0.5, 5.0)))
            k = int(rng.integers(0, 6))
            probes = rng.normal(size=(k, 3)) * rng.uniform(1.0, 10.0)
            r = float(rng.uniform(0.3, 12.0))
            s_idx, p_idx = query_pairs(cl, probes, r)
            got = set(zip(s_idx.tolist(), p_idx.tolist()))
            want = {
                (int(i), kk)
                for kk in range(k)
                for i in np.nonzero(
                    ((pts - probes[kk]) ** 2).sum(axis=1) <= r * r
                )[0]
            }
            assert got == want

    def test_probe_major_canonical_order(self, rng):
        pts = rng.normal(size=(80, 3)) * 5.0
        cl = CellList(pts, cell_size=2.0)
        probes = rng.normal(size=(5, 3)) * 4.0
        _, p_idx = query_pairs(cl, probes, 6.0)
        assert (np.diff(p_idx) >= 0).all()

    def test_order_independent_of_other_probes(self, rng):
        # The per-probe pair sequence must not depend on which other
        # probes ride along in the same call (the canonical-order
        # property the incremental scorer's bit-stability rests on).
        pts = rng.normal(size=(60, 3)) * 5.0
        cl = CellList(pts, cell_size=2.0)
        probes = rng.normal(size=(4, 3)) * 4.0
        s_all, p_all = query_pairs(cl, probes, 6.0)
        for k in range(4):
            s_one, _ = query_pairs(cl, probes[k : k + 1], 6.0)
            assert np.array_equal(s_all[p_all == k], s_one)

    def test_empty_inputs(self):
        cl = CellList(np.zeros((0, 3)), cell_size=1.0)
        s, p = query_pairs(cl, np.zeros((2, 3)), 1.0)
        assert s.size == 0 and p.size == 0
        cl2 = CellList(np.zeros((3, 3)), cell_size=1.0)
        s, p = query_pairs(cl2, np.zeros((0, 3)), 1.0)
        assert s.size == 0 and p.size == 0


# ---------------------------------------------------------------------------
# trajectory equivalence across rebuild boundaries


class TestTrajectoryEquivalence:
    def _walk(self, rec, template, coords, moves, tol=DRIFT_REL_BOUND):
        """Score a pose sequence with incremental vs cutoff reference."""
        inc = _fresh(rec, template)
        ref = CutoffScorer(rec, template, cutoff=10.0)
        pose = coords.copy()
        worst = 0.0
        for mv in moves:
            pose = mv(pose)
            si, sc = inc.score(pose), ref.score(pose)
            worst = max(worst, abs(si - sc) / max(1.0, abs(sc)))
        assert worst <= tol, worst
        return inc

    def test_long_shift_run_crosses_rebuilds(self, pair, rng):
        rec, template, coords = pair
        moves = []
        for _ in range(80):
            step = rng.normal(size=3)
            step /= np.linalg.norm(step)
            moves.append(lambda p, s=step: p + 0.8 * s)
        inc = self._walk(rec, template, coords, moves)
        # 80 x 0.8 A steps against a 2 A skin must re-list many times.
        assert inc.rebuild_count >= 5

    def test_rotation_only_trajectory(self, pair, rng):
        rec, template, coords = pair

        def rot(p, axis, ang):
            axis = axis / np.linalg.norm(axis)
            c, s = np.cos(ang), np.sin(ang)
            centroid = p.mean(axis=0)
            rel = p - centroid
            return (
                centroid
                + rel * c
                + np.cross(axis, rel) * s
                + np.outer(rel @ axis, axis) * (1 - c)
            )

        moves = [
            (lambda p, a=rng.normal(size=3): rot(p, a, np.radians(4.0)))
            for _ in range(60)
        ]
        self._walk(rec, template, coords, moves)

    def test_torsion_actions_via_flex_engine(self, small_complex):
        eng = MetadockEngine(
            small_complex,
            shift_length=0.8,
            rotation_angle_deg=5.0,
            n_torsions=2,
            scoring_method="incremental",
            scoring_kwargs={"cutoff": 10.0, "skin": 2.0},
        )
        ref = CutoffScorer(eng.receptor, eng.template, cutoff=10.0)
        rng = np.random.default_rng(5)
        for _ in range(50):
            eng.apply_action(int(rng.integers(0, eng.n_actions)))
            si = eng.score()
            sc = ref.score(eng.ligand_coords())
            assert abs(si - sc) <= DRIFT_REL_BOUND * max(1.0, abs(sc))

    def test_env_episode_with_sphere_exit(self, small_complex):
        # Drive a real DockingEnv on the incremental scorer straight out
        # of the escape sphere; per-step scores must track the cutoff
        # reference the whole way and the episode must terminate.
        eng = MetadockEngine(
            small_complex,
            shift_length=0.8,
            rotation_angle_deg=5.0,
            scoring_method="incremental",
            scoring_kwargs={"cutoff": 10.0, "skin": 2.0},
        )
        env = DockingEnv(eng)
        ref = CutoffScorer(eng.receptor, eng.template, cutoff=10.0)
        env.reset()
        done = False
        for _ in range(200):
            _, _, done, info = env.step(0)  # march along +x
            sc = ref.score(eng.ligand_coords())
            assert abs(info["score"] - sc) <= DRIFT_REL_BOUND * max(
                1.0, abs(sc)
            )
            if done:
                break
        assert done and info["termination"] == "escape"
        assert eng.scorer.rebuild_count >= 2

    def test_converges_to_exact_with_cutoff(self, pair):
        rec, template, coords = pair
        exact = ExactScorer(rec, template).score(coords)
        full = IncrementalScorer(
            rec, template, cutoff=1000.0, skin=2.0, shifted=False
        ).score(coords)
        assert full == pytest.approx(exact, rel=1e-9)


# ---------------------------------------------------------------------------
# bit-stability: the cache is derived state


class TestCacheIndependence:
    def test_warm_equals_fresh_bitwise(self, pair, rng):
        rec, template, coords = pair
        warm = _fresh(rec, template)
        pose = coords.copy()
        for _ in range(40):
            pose = pose + rng.normal(scale=0.35, size=pose.shape)
            a = warm.score(pose)
            b = _fresh(rec, template).score(pose)
            assert a == b  # bitwise, not approx

    def test_mid_skin_pose_bitwise(self, pair):
        # A pose strictly inside the skin (no rebuild on the warm
        # scorer, immediate build on the fresh one) is the adversarial
        # case: the two scorers reduce over lists built at different
        # centers.
        rec, template, coords = pair
        warm = _fresh(rec, template)
        warm.score(coords)
        drifted = coords + 0.3  # < skin/2 = 1.0
        before = warm.rebuild_count
        a = warm.score(drifted)
        assert warm.rebuild_count == before  # served from cache
        assert a == _fresh(rec, template).score(drifted)

    def test_score_batch_matches_singles(self, pair, rng):
        rec, template, coords = pair
        batch = coords[None] + rng.normal(scale=0.8, size=(6, 1, 3))
        a = _fresh(rec, template).score_batch(batch)
        b = np.array(
            [_fresh(rec, template).score(c) for c in batch]
        )
        assert np.array_equal(a, b)

    def test_zero_pairs_scores_zero(self, pair):
        rec, template, coords = pair
        inc = _fresh(rec, template)
        assert inc.score(coords + 500.0) == 0.0
        assert inc.active_pairs == 0


# ---------------------------------------------------------------------------
# rebuild cadence (skin semantics)


class TestRebuildCadence:
    def test_no_rebuild_inside_half_skin(self, pair):
        rec, template, coords = pair
        inc = _fresh(rec, template)  # skin 2.0 -> budget 1.0
        inc.score(coords)
        assert inc.rebuild_count == 1
        inc.score(coords + [0.9, 0.0, 0.0])
        inc.score(coords + [0.0, -0.9, 0.0])  # displacement from ref
        assert inc.rebuild_count == 1

    def test_rebuild_beyond_half_skin(self, pair):
        rec, template, coords = pair
        inc = _fresh(rec, template)
        inc.score(coords)
        inc.score(coords + [1.1, 0.0, 0.0])
        assert inc.rebuild_count == 2

    def test_single_atom_displacement_triggers(self, pair):
        # The budget is per-atom max displacement, not the centroid's.
        rec, template, coords = pair
        inc = _fresh(rec, template)
        inc.score(coords)
        moved = coords.copy()
        moved[0] += [0.0, 0.0, 1.2]
        inc.score(moved)
        assert inc.rebuild_count == 2

    def test_validation(self, pair):
        rec, template, coords = pair
        with pytest.raises(ValueError, match="cutoff"):
            IncrementalScorer(rec, template, cutoff=0.0)
        with pytest.raises(ValueError, match="skin"):
            IncrementalScorer(rec, template, skin=-1.0)
        inc = _fresh(rec, template)
        with pytest.raises(ValueError, match="shape"):
            inc.score(coords[:3])
        with pytest.raises(ValueError, match="coords_batch"):
            inc.score_batch(coords)


# ---------------------------------------------------------------------------
# factory / config / env / CLI plumbing


class TestPlumbing:
    def test_factory(self, pair):
        rec, template, _ = pair
        s = make_scorer("incremental", rec, template, cutoff=9.0, skin=1.5)
        assert isinstance(s, IncrementalScorer)
        assert s.cutoff == 9.0 and s.skin == 1.5
        assert "incremental" in SCORING_METHODS

    def test_config_validates_against_factory_methods(self):
        # The config keeps a literal copy of SCORING_METHODS (import
        # cycle); this pins the two sets together.
        for method in SCORING_METHODS:
            ci_scale_config(episodes=1, scoring_method=method)
        with pytest.raises(ValueError, match="scoring_method"):
            ci_scale_config(episodes=1, scoring_method="verlet")

    def test_make_env_wires_scorer(self, small_complex):
        cfg = ci_scale_config(
            episodes=1,
            scoring_method="incremental",
            scoring_kwargs={"cutoff": 9.0},
        )
        env = make_env(cfg, small_complex)
        assert isinstance(env.engine.scorer, IncrementalScorer)
        assert env.engine.scorer.cutoff == 9.0
        assert env.engine.scorer.skin == DEFAULT_SKIN

    def test_make_flexible_env_wires_scorer(self, small_complex):
        cfg = ci_scale_config(episodes=1, scoring_method="incremental")
        env = make_flexible_env(cfg, small_complex)
        assert isinstance(env.engine.scorer, IncrementalScorer)

    def test_config_roundtrips_through_manifest_dict(self):
        from repro.config import config_from_dict

        cfg = ci_scale_config(
            episodes=2,
            scoring_method="incremental",
            scoring_kwargs={"skin": 4.0},
        )
        back = config_from_dict(dataclasses.asdict(cfg))
        assert back.scoring_method == "incremental"
        assert back.scoring_kwargs == {"skin": 4.0}

    def test_cli_accepts_scoring_method(self):
        from repro.cli import build_parser

        p = build_parser()
        args = p.parse_args(
            ["figure4", "--scoring-method", "incremental"]
        )
        assert args.scoring_method == "incremental"
        args = p.parse_args(
            ["curriculum", "--scoring-method", "cutoff"]
        )
        assert args.scoring_method == "cutoff"
        with pytest.raises(SystemExit):
            p.parse_args(["figure4", "--scoring-method", "verlet"])


# ---------------------------------------------------------------------------
# telemetry


class TestTelemetry:
    def test_counter_gauge_and_span(self, small_complex):
        from repro.telemetry.metrics import MetricsRegistry
        from repro.telemetry.spans import SpanTracer

        eng = MetadockEngine(
            small_complex,
            shift_length=0.8,
            scoring_method="incremental",
            scoring_kwargs={"cutoff": 10.0, "skin": 2.0},
        )
        reg, tr = MetricsRegistry(), SpanTracer()
        eng.metrics = reg
        eng.tracer = tr
        assert eng.scorer.metrics is reg and eng.scorer.tracer is tr
        rng = np.random.default_rng(3)
        eng.reset(observe=False)
        for _ in range(30):
            eng.apply_action(int(rng.integers(0, 12)))
            eng.score()
        assert eng.scorer.rebuild_count >= 1
        assert (
            reg.get(REBUILDS_METRIC).value == eng.scorer.rebuild_count
        )
        assert reg.get(ACTIVE_PAIRS_METRIC).value == eng.scorer.active_pairs
        report = str(tr.report())
        assert "neighborlist-rebuild" in report

    def test_exact_scorer_ignores_telemetry_hooks(self, small_complex):
        # Setting engine telemetry with a scorer that has no hooks is a
        # silent no-op (the hasattr guard), not an error.
        eng = MetadockEngine(small_complex, scoring_method="exact")
        eng.metrics = object()
        eng.tracer = None
        assert eng.metrics is not None


# ---------------------------------------------------------------------------
# satellite exact-equality pins


class TestSatelliteEquality:
    def test_exact_scorer_cached_tables_bitwise(self, pair, rng):
        from repro.scoring.composite import (
            interaction_score,
            score_pose_batch,
        )

        rec, template, coords = pair
        scorer = ExactScorer(rec, template)
        for _ in range(5):
            pose = coords + rng.normal(scale=1.0, size=coords.shape)
            assert scorer.score(pose) == interaction_score(
                rec, template.with_coords(pose)
            )
        batch = coords[None] + rng.normal(scale=1.0, size=(4, 1, 3))
        assert np.array_equal(
            scorer.score_batch(batch),
            score_pose_batch(rec, template, batch),
        )

    def test_cutoff_batch_bitwise(self, pair, rng):
        rec, template, coords = pair
        scorer = CutoffScorer(rec, template, cutoff=10.0)
        batch = np.concatenate(
            [
                coords[None] + rng.normal(scale=1.0, size=(4, 1, 3)),
                coords[None] + 500.0,  # zero-pair pose mixed in
            ]
        )
        singles = np.array([scorer.score(c) for c in batch])
        assert np.array_equal(scorer.score_batch(batch), singles)

    def test_grid_batch_bitwise(self, pair, rng):
        rec, template, coords = pair
        scorer = GridScorer(rec, template)
        batch = coords[None] + rng.normal(scale=1.0, size=(5, 1, 3))
        singles = np.array([scorer.score(c) for c in batch])
        assert np.array_equal(scorer.score_batch(batch), singles)

    def test_batch_shape_validation(self, pair):
        rec, template, coords = pair
        for scorer in (
            CutoffScorer(rec, template, cutoff=10.0),
            GridScorer(rec, template),
        ):
            with pytest.raises(ValueError, match="coords_batch"):
                scorer.score_batch(coords)


# ---------------------------------------------------------------------------
# interrupt/resume bit-stability through the trainer stack


class TestIncrementalResume:
    def test_interrupt_resume_bit_exact(self, tmp_path):
        from repro.experiments.figure4 import build_agent_for_env
        from repro.rl.trainer import Trainer
        from repro.runtime import (
            RunInterrupted,
            RunLoop,
            RuntimeContext,
            ShutdownGuard,
        )

        cfg = ci_scale_config(
            episodes=5,
            seed=3,
            max_steps=12,
            scoring_method="incremental",
            scoring_kwargs={"cutoff": 10.0, "skin": 2.0},
        )

        def make_trainer(on_episode_end=None):
            env = make_env(cfg)
            agent = build_agent_for_env(cfg, env)
            return env, agent, Trainer(
                env,
                agent,
                episodes=cfg.episodes,
                max_steps_per_episode=cfg.max_steps_per_episode,
                learning_start=cfg.learning_start,
                target_update_steps=cfg.target_update_steps,
                train_interval=cfg.train_interval,
                on_episode_end=on_episode_end,
            )

        rt_a = RuntimeContext(tmp_path / "a", checkpoint_every=2)
        env, agent_a, trainer = make_trainer()
        hist_a = RunLoop(rt_a, phase="t").run_episodes(trainer)
        env.close()

        guard = ShutdownGuard()

        def on_end(stats):
            if stats.episode == 2:
                guard.request_stop()

        rt_b = RuntimeContext(
            tmp_path / "b", checkpoint_every=2, guard=guard
        )
        env, _, trainer_b = make_trainer(on_episode_end=on_end)
        with pytest.raises(RunInterrupted):
            RunLoop(rt_b, phase="t").run_episodes(trainer_b)
        env.close()

        # Resume in a fresh stack: the scorer starts with a cold Verlet
        # cache, which must not perturb a single float.
        rt_c = RuntimeContext(tmp_path / "b", checkpoint_every=2)
        env, agent_c, trainer_c = make_trainer()
        hist_b = RunLoop(rt_c, phase="t").run_episodes(trainer_c)
        env.close()

        assert hist_a.total_steps == hist_b.total_steps
        assert len(hist_a.episodes) == len(hist_b.episodes)
        for ea, eb in zip(hist_a.episodes, hist_b.episodes):
            da, db = dataclasses.asdict(ea), dataclasses.asdict(eb)
            assert set(da) == set(db)
            for k in da:
                va, vb = da[k], db[k]
                if isinstance(va, float) and va != va:
                    assert vb != vb, (k, va, vb)
                else:
                    assert va == vb, (k, va, vb)
        sa, sc = agent_a.state_dict(), agent_c.state_dict()

        def deep_equal(a, b):
            if isinstance(a, dict):
                assert set(a) == set(b)
                for k in a:
                    deep_equal(a[k], b[k])
            elif isinstance(a, np.ndarray):
                assert np.array_equal(a, b, equal_nan=True)
            else:
                assert a == b or (a != a and b != b)

        deep_equal(sa, sc)
