"""Experiment drivers: Table 1, Figure 4, geometry, baselines, ablations."""

import numpy as np
import pytest

from repro.config import PAPER_CONFIG, ci_scale_config
from repro.experiments.ablations import run_comm_ablation
from repro.experiments.baselines import run_baseline_comparison
from repro.experiments.figure4 import (
    CurveShape,
    curve_shape_metrics,
    run_figure4_experiment,
)
from repro.experiments.geometry import ascii_projection, run_geometry_experiment
from repro.experiments.table1 import (
    PAPER_TABLE1,
    render_table1,
    verify_paper_defaults,
)

from tests.conftest import SMALL_COMPLEX_CFG


class TestTable1:
    def test_paper_defaults_exact(self):
        assert verify_paper_defaults() == []

    def test_mismatch_detected(self):
        bad = PAPER_CONFIG.replace(gamma=0.5)
        problems = verify_paper_defaults(bad)
        assert len(problems) == 1
        assert "gamma" in problems[0]

    def test_render_contains_all_values(self):
        table = render_table1()
        for value in ("1,800", "16,599", "400,000", "0.00025", "RMSprop"):
            assert value in table

    def test_published_row_count(self):
        assert len(PAPER_TABLE1) == 20


class TestCurveShapeMetrics:
    def test_rise_and_decline_detected(self):
        series = np.concatenate(
            [np.linspace(0, 10, 30), np.linspace(10, 6, 30)]
        )
        shape = curve_shape_metrics(series, smooth=3)
        assert shape.rose
        assert shape.declined_after_peak
        assert shape.peak_interior
        assert shape.paper_shape

    def test_monotone_rise_no_decline(self):
        shape = curve_shape_metrics(np.linspace(0, 5, 40), smooth=1)
        assert shape.rose and not shape.declined_after_peak
        assert not shape.paper_shape

    def test_flat_curve(self):
        shape = curve_shape_metrics(np.ones(20), smooth=1)
        assert not shape.rose

    def test_empty(self):
        shape = curve_shape_metrics(np.array([]))
        assert shape.n_points == 0
        assert not shape.paper_shape

    def test_smoothing_removes_noise_spike(self):
        rng = np.random.default_rng(0)
        base = np.concatenate([np.linspace(0, 10, 50), np.linspace(10, 7, 50)])
        noisy = base + rng.normal(scale=0.3, size=100)
        shape = curve_shape_metrics(noisy, smooth=7)
        assert shape.paper_shape


class TestFigure4Experiment:
    def test_tiny_run_produces_series(self, tiny_run_config):
        result = run_figure4_experiment(tiny_run_config)
        assert len(result.history.episodes) == tiny_run_config.episodes
        assert result.series.size > 0
        assert result.agent is not None
        assert "Figure 4" in result.summary()

    def test_deterministic(self, tiny_run_config):
        a = run_figure4_experiment(tiny_run_config)
        b = run_figure4_experiment(tiny_run_config)
        np.testing.assert_allclose(a.series, b.series)

    def test_variant_ddqn_runs(self, tiny_run_config):
        result = run_figure4_experiment(tiny_run_config.replace(variant="ddqn"))
        assert result.series.size > 0

    def test_variant_distributional_runs(self, tiny_run_config):
        result = run_figure4_experiment(
            tiny_run_config.replace(variant="distributional")
        )
        assert result.series.size > 0

    def test_q_rises_during_learning(self):
        # The robust half of the Figure 4 shape at test scale: average
        # max Q grows once learning starts (rewards are mostly +-1 and
        # gamma near 1).  The decline half is asserted at bench scale.
        cfg = ci_scale_config(episodes=30, seed=0, learning_rate=0.002)
        result = run_figure4_experiment(cfg)
        s = result.shape(smooth=5)
        assert s.rose
        assert s.peak > 2.0 * max(s.first, 0.1)


class TestGeometryExperiment:
    def test_report_invariants(self):
        report = run_geometry_experiment(SMALL_COMPLEX_CFG)
        assert report.pocket_is_optimum
        assert report.overlap_is_catastrophic
        assert report.crystal_distance < report.initial_distance
        out = report.summary()
        assert "crystal pose" in out

    def test_ascii_projection_has_both_poses(self, small_complex):
        art = ascii_projection(small_complex)
        assert "A" in art and "B" in art and "." in art


class TestBaselineComparison:
    def test_all_methods_reported(self):
        cfg = ci_scale_config(episodes=4, seed=0, max_steps=20)
        comp = run_baseline_comparison(
            cfg, budget=150, strategies=("montecarlo", "random")
        )
        methods = {r.method for r in comp.results}
        assert methods == {
            "montecarlo",
            "metaheuristic-random",
            "dqn-docking",
        }
        assert comp.crystal_score > 0

    def test_summary_table(self):
        cfg = ci_scale_config(episodes=3, seed=1, max_steps=15)
        comp = run_baseline_comparison(
            cfg, budget=100, strategies=("random",), include_dqn=False
        )
        assert "best score" in comp.summary()
        with pytest.raises(KeyError):
            comp.result_for("nonexistent")

    def test_optimizers_beat_untrained_exploration(self):
        # Classical optimizers should comfortably beat the random-walk
        # scores an untrained agent stumbles into (the paper's framing).
        cfg = ci_scale_config(episodes=3, seed=0, max_steps=15)
        comp = run_baseline_comparison(
            cfg, budget=250, strategies=("local",), include_dqn=True
        )
        local = comp.result_for("metaheuristic-local")
        assert local.best_score > 0.3 * comp.crystal_score


class TestCommAblation:
    def test_reports_three_channels(self, tiny_run_config):
        res = run_comm_ablation(tiny_run_config, steps=30)
        assert [r[0] for r in res.rows] == ["ram", "file", "file+fsync"]
        out = res.summary()
        assert "steps/sec" in out

    def test_ram_not_slower_than_fsync(self, tiny_run_config):
        res = run_comm_ablation(tiny_run_config, steps=40)
        ram_sps = float(res.rows[0][1])
        fsync_sps = float(res.rows[2][1])
        assert ram_sps > fsync_sps
