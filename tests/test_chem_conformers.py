"""Conformer generation for flexible ligands."""

import numpy as np
import pytest

from repro.chem.conformers import (
    conformer_diversity,
    generate_conformers,
)
from repro.chem.molecule import Molecule


@pytest.fixture(scope="module")
def ligand(small_complex):
    return small_complex.ligand_crystal


class TestGenerateConformers:
    def test_identity_first(self, ligand):
        confs = generate_conformers(ligand, 4, rng=0)
        assert all(t == 0.0 for t in confs[0].torsions)
        np.testing.assert_allclose(
            confs[0].coords,
            ligand.coords - ligand.coords.mean(axis=0),
        )

    def test_requested_count(self, ligand):
        confs = generate_conformers(ligand, 5, rng=0)
        assert 1 <= len(confs) <= 5
        assert len(confs) >= 2  # sampling should find some

    def test_all_centered(self, ligand):
        for c in generate_conformers(ligand, 4, rng=1):
            np.testing.assert_allclose(
                c.coords.mean(axis=0), 0.0, atol=1e-9
            )

    def test_no_self_clashes(self, ligand):
        for c in generate_conformers(ligand, 6, clash_distance=0.9, rng=2):
            assert c.min_nonbonded_distance >= 0.9

    def test_bond_lengths_preserved(self, ligand):
        centered = ligand.coords - ligand.coords.mean(axis=0)
        for c in generate_conformers(ligand, 4, rng=3)[1:]:
            for i, j in ligand.bonds:
                before = np.linalg.norm(centered[j] - centered[i])
                after = np.linalg.norm(c.coords[j] - c.coords[i])
                assert after == pytest.approx(before, abs=1e-9)

    def test_deterministic(self, ligand):
        a = generate_conformers(ligand, 4, rng=5)
        b = generate_conformers(ligand, 4, rng=5)
        assert len(a) == len(b)
        for x, y in zip(a, b):
            np.testing.assert_allclose(x.coords, y.coords)

    def test_rigid_molecule_single_conformer(self):
        # Methane-like: no rotatable bonds -> identity only.
        mol = Molecule.from_symbols(
            ["C", "H", "H", "H", "H"],
            [
                [0, 0, 0],
                [1.0, 0, 0],
                [-0.5, 0.9, 0],
                [-0.5, -0.9, 0],
                [0, 0, 1.0],
            ],
            bonds=[[0, 1], [0, 2], [0, 3], [0, 4]],
        )
        confs = generate_conformers(mol, 8, rng=0)
        assert len(confs) == 1

    def test_max_torsions_limit(self, ligand):
        confs = generate_conformers(ligand, 3, max_torsions=1, rng=0)
        assert all(len(c.torsions) == 1 for c in confs)

    def test_invalid_count(self, ligand):
        with pytest.raises(ValueError):
            generate_conformers(ligand, 0)


class TestDiversity:
    def test_singleton_zero(self, ligand):
        confs = generate_conformers(ligand, 1, rng=0)
        assert conformer_diversity(confs) == 0.0

    def test_ensemble_positive(self, ligand):
        confs = generate_conformers(ligand, 5, rng=0)
        if len(confs) >= 2:
            assert conformer_diversity(confs) > 0.0
