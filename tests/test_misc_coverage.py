"""Coverage for remaining behaviours: randomized resets, report driver,
cutoff brute-force parity, distance-dependent dielectric."""

import numpy as np
import pytest

from repro.env.docking_env import DockingEnv
from repro.metadock.engine import MetadockEngine


class TestRandomizedReset:
    def test_jitters_start_state(self, small_complex):
        rng = np.random.default_rng(0)
        env = DockingEnv(
            MetadockEngine(small_complex),
            randomize_reset=True,
            reset_rng=rng,
        )
        s1 = env.reset()
        s2 = env.reset()
        assert not np.array_equal(s1, s2)

    def test_jitter_is_small(self, small_complex):
        rng = np.random.default_rng(1)
        env = DockingEnv(
            MetadockEngine(small_complex),
            randomize_reset=True,
            reset_rng=rng,
        )
        env.reset()
        base = small_complex.ligand_initial.centroid()
        d = np.linalg.norm(env.engine.ligand_coords().mean(axis=0) - base)
        assert d < 3.0

    def test_disabled_without_rng(self, small_complex):
        env = DockingEnv(
            MetadockEngine(small_complex), randomize_reset=True
        )
        s1 = env.reset()
        s2 = env.reset()
        np.testing.assert_array_equal(s1, s2)


class TestCutoffBruteForceParity:
    def test_matches_masked_full_sum(self, small_complex):
        """Cutoff scorer == full Eq. 1 restricted to in-range pairs."""
        from repro.constants import COULOMB_CONSTANT, MIN_DISTANCE
        from repro.scoring.scorers import CutoffScorer

        rec = small_complex.receptor
        lig = small_complex.ligand_crystal
        template = lig.with_coords(lig.coords - lig.centroid())
        cutoff = 9.0
        scorer = CutoffScorer(rec, template, cutoff=cutoff, shifted=False)
        got = scorer.score(lig.coords)

        # Brute force: all pairs within the cutoff.
        d = np.linalg.norm(
            rec.coords[:, None] - lig.coords[None, :], axis=-1
        )
        mask = d <= cutoff
        dc = np.maximum(d, MIN_DISTANCE)
        elec = COULOMB_CONSTANT * np.outer(rec.charges, template.charges) / dc
        sigma = 0.5 * (rec.sigma[:, None] + template.sigma[None, :])
        eps = np.sqrt(np.outer(rec.epsilon, template.epsilon))
        x6 = (sigma / dc) ** 6
        e_lj = 4 * eps * (x6 * x6 - x6)
        partial = float((elec[mask] + e_lj[mask]).sum())
        # H-bond correction recomputed via the module for eligible pairs:
        from repro.scoring import hbond as hb
        from repro.scoring.pairwise import direction_vectors

        elig = hb.eligible_pairs_mask(
            rec.hbond_donor, rec.hbond_acceptor,
            template.hbond_donor, template.hbond_acceptor,
        )
        dirs = direction_vectors(rec.coords, rec.bonds)
        cos, sin = hb.hbond_angle_factors(rec.coords, lig.coords, dirs)
        corr = hb.hbond_energy_matrix(dc, elig & mask, cos, sin, sigma, eps)
        partial += float(corr.sum())
        assert got == pytest.approx(-partial, rel=1e-9)


class TestDistanceDependentDielectric:
    def test_weakens_long_range_interactions(self, small_complex):
        from repro.scoring.composite import interaction_breakdown

        rec = small_complex.receptor
        lig = small_complex.ligand_initial  # well separated
        plain = interaction_breakdown(rec, lig)
        screened = interaction_breakdown(
            rec, lig, distance_dependent_dielectric=True
        )
        assert abs(screened.electrostatic) < abs(plain.electrostatic)
        # LJ and H-bond are untouched by the dielectric model.
        assert screened.lennard_jones == pytest.approx(plain.lennard_jones)
        assert screened.hydrogen_bond == pytest.approx(plain.hydrogen_bond)


class TestReportGeneration:
    def test_quick_report_contains_all_sections(self):
        from repro.experiments.reporting import generate_report

        text = generate_report(quick=True)
        for heading in (
            "Table 1",
            "Figures 1 & 3",
            "Equation 1 / Algorithm 1",
            "Figure 4",
            "Monte Carlo",
            "communication",
            "blind docking",
        ):
            assert heading in text, heading
        assert "report wall time" in text
