"""Trainer: Algorithm 2 loop semantics and metric collection."""

import numpy as np
import pytest

from repro.rl.agent import AgentConfig, DQNAgent
from repro.rl.trainer import (
    EpisodeStats,
    Trainer,
    TrainingHistory,
    greedy_rollout,
)


class CountingEnv:
    """Two-state chain: action 0 raises the 'score', action 1 lowers it.

    Gives the trainer deterministic, inspectable dynamics without the
    docking stack.
    """

    def __init__(self, horizon=10):
        self.horizon = horizon
        self.score = 0.0
        self.t = 0
        self.reset_calls = 0
        self.n_actions = 2
        self.state_dim = 2

    def reset(self):
        self.reset_calls += 1
        self.score = 0.0
        self.t = 0
        return np.array([self.score, 0.0])

    def step(self, action):
        self.t += 1
        delta = 1.0 if action == 0 else -1.0
        self.score += delta
        done = self.t >= self.horizon
        info = {"score": self.score}
        if done:
            info["termination"] = "chain-end"
        return np.array([self.score, float(self.t)]), float(
            np.sign(delta)
        ), done, info


def tiny_agent(state_dim=2, n_actions=2, **kw) -> DQNAgent:
    return DQNAgent(
        AgentConfig(
            state_dim=state_dim,
            n_actions=n_actions,
            hidden_sizes=(8,),
            replay_capacity=512,
            minibatch_size=4,
            initial_exploration_steps=0,
            epsilon_decay=0.05,
            epsilon_final=0.0,
            learning_rate=0.01,
            seed=0,
            **kw,
        )
    )


class TestTrainer:
    def test_episode_count(self):
        env = CountingEnv()
        history = Trainer(
            env, tiny_agent(), episodes=5, max_steps_per_episode=10
        ).run()
        assert len(history.episodes) == 5
        assert env.reset_calls == 5
        assert history.total_steps == 50

    def test_learning_start_respected(self):
        env = CountingEnv()
        agent = tiny_agent()
        Trainer(
            env,
            agent,
            episodes=3,
            max_steps_per_episode=10,
            learning_start=25,
        ).run()
        # 30 steps total, learning from step 25 -> 6 learn calls at most.
        assert 0 < agent.learn_steps <= 6

    def test_target_sync_period(self):
        env = CountingEnv()
        agent = tiny_agent()
        Trainer(
            env,
            agent,
            episodes=4,
            max_steps_per_episode=10,
            target_update_steps=10,
        ).run()
        assert agent.target_syncs == 4

    def test_train_interval(self):
        env = CountingEnv()
        agent = tiny_agent()
        Trainer(
            env,
            agent,
            episodes=2,
            max_steps_per_episode=10,
            train_interval=5,
        ).run()
        # 20 steps, learning every 5th once replay has a minibatch.
        assert agent.learn_steps == 4 - 1 + 1  # step 5, 10, 15, 20

    def test_stats_fields(self):
        env = CountingEnv()
        history = Trainer(
            env, tiny_agent(), episodes=2, max_steps_per_episode=10
        ).run()
        ep = history.episodes[0]
        assert isinstance(ep, EpisodeStats)
        assert ep.steps == 10
        assert ep.termination == "chain-end"
        assert np.isfinite(ep.avg_max_q)
        assert ep.best_score >= ep.final_score or ep.best_score >= 0

    def test_on_episode_end_callback(self):
        seen = []
        Trainer(
            CountingEnv(),
            tiny_agent(),
            episodes=3,
            max_steps_per_episode=5,
            on_episode_end=seen.append,
        ).run()
        assert [e.episode for e in seen] == [0, 1, 2]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            Trainer(CountingEnv(), tiny_agent(), episodes=0, max_steps_per_episode=5)

    def test_agent_learns_the_chain(self):
        # After training, the greedy policy should prefer action 0
        # (immediate +1 reward every step).
        env = CountingEnv(horizon=8)
        agent = tiny_agent()
        Trainer(
            env, agent, episodes=30, max_steps_per_episode=8
        ).run()
        best, trace = greedy_rollout(env, agent, max_steps=8)
        assert best == pytest.approx(8.0)


class TestTrainingHistory:
    def _history(self, qs, active_from=0):
        h = TrainingHistory()
        for i, q in enumerate(qs):
            h.episodes.append(
                EpisodeStats(
                    episode=i,
                    steps=10,
                    total_reward=1.0,
                    avg_max_q=q,
                    best_score=float(i),
                    final_score=float(i),
                    epsilon=0.1,
                    mean_loss=0.0,
                    learning_active=i >= active_from,
                    termination="x",
                )
            )
        return h

    def test_figure4_series_filters_inactive(self):
        h = self._history([1.0, 2.0, 3.0, 4.0], active_from=2)
        np.testing.assert_array_equal(h.figure4_series(), [3.0, 4.0])

    def test_best_score(self):
        h = self._history([1.0, 2.0])
        assert h.best_score == 1.0

    def test_empty_history(self):
        h = TrainingHistory()
        assert h.best_score == float("-inf")
        assert "(no episodes)" in h.summary()

    def test_summary_contains_curve(self):
        h = self._history([1.0, 5.0, 2.0])
        out = h.summary()
        assert "avg max Q" in out
        assert "best score" in out

    def test_figure4_plot_renders(self):
        h = self._history(list(np.linspace(0, 10, 30)))
        assert "*" in h.figure4_plot()


class TestGreedyRollout:
    def test_returns_best_and_trace(self):
        env = CountingEnv(horizon=5)
        agent = tiny_agent()
        best, trace = greedy_rollout(env, agent, max_steps=5)
        assert len(trace) == 5
        assert best == max(trace)

    def test_respects_done(self):
        env = CountingEnv(horizon=2)
        agent = tiny_agent()
        _best, trace = greedy_rollout(env, agent, max_steps=100)
        assert len(trace) == 2
