"""Synthetic complex builders: the 2BSM stand-in contract."""

import numpy as np
import pytest

from repro.chem.builders import (
    POCKET_AXIS,
    _in_pocket,
    build_complex,
    build_ligand,
    build_ligand_variant,
    build_receptor,
)
from repro.chem.topology import connected_components, rotatable_bonds
from repro.chem.validate import validate_complex, validate_molecule
from repro.config import ComplexConfig
from repro.scoring.composite import interaction_score

from tests.conftest import SMALL_COMPLEX_CFG


class TestBuildReceptor:
    def test_exact_atom_count(self, small_complex):
        assert small_complex.receptor.n_atoms == SMALL_COMPLEX_CFG.receptor_atoms

    def test_deterministic(self):
        a = build_receptor(SMALL_COMPLEX_CFG)
        b = build_receptor(SMALL_COMPLEX_CFG)
        np.testing.assert_array_equal(a.coords, b.coords)
        assert a.symbols == b.symbols

    def test_seed_changes_geometry(self):
        import dataclasses

        other = build_receptor(
            dataclasses.replace(SMALL_COMPLEX_CFG, seed=999)
        )
        base = build_receptor(SMALL_COMPLEX_CFG)
        assert not np.array_equal(other.coords, base.coords)

    def test_pocket_region_empty(self, small_complex):
        # No receptor atom may sit strictly inside the carved cone
        # (tolerance: lining atoms sit within one shell of the boundary).
        cfg = SMALL_COMPLEX_CFG
        import dataclasses

        inner = dataclasses.replace(
            cfg,
            pocket_aperture=cfg.pocket_aperture - 0.25,
            pocket_depth=cfg.pocket_depth - 2.0,
        )
        inside = _in_pocket(small_complex.receptor.coords, inner)
        assert not inside.any()

    def test_roughly_neutral(self, small_complex):
        assert abs(small_complex.receptor.charges.sum()) < 1.0

    def test_lining_is_negative_acceptors(self, small_complex):
        rec = small_complex.receptor
        lining = rec.charges <= -0.35
        assert lining.sum() >= 5
        assert rec.hbond_acceptor[lining].all()

    def test_has_positive_surface_sites(self, small_complex):
        # The "two positives repel" failure mode needs positive receptor
        # sites somewhere on the surface.
        assert (small_complex.receptor.charges >= 0.4).any()

    def test_molecule_validates(self, small_complex):
        report = validate_molecule(small_complex.receptor)
        assert report.ok, report.errors


class TestBuildLigand:
    def test_exact_atom_count(self, small_complex):
        assert small_complex.ligand_crystal.n_atoms == SMALL_COMPLEX_CFG.ligand_atoms

    def test_connected(self, small_complex):
        lig = small_complex.ligand_crystal
        comps = connected_components(lig.n_atoms, lig.bonds)
        assert len(comps) == 1

    def test_rotatable_bond_requirement(self, small_complex):
        lig = small_complex.ligand_crystal
        rb = rotatable_bonds(lig.symbols, lig.coords, lig.bonds)
        assert len(rb) >= SMALL_COMPLEX_CFG.rotatable_bonds

    def test_net_positive(self, small_complex):
        assert small_complex.ligand_crystal.charges.sum() > 0.5

    def test_deterministic(self):
        a = build_ligand(SMALL_COMPLEX_CFG)
        b = build_ligand(SMALL_COMPLEX_CFG)
        np.testing.assert_array_equal(a.coords, b.coords)

    def test_many_seeds_never_fail(self):
        import dataclasses

        for seed in range(10):
            cfg = dataclasses.replace(SMALL_COMPLEX_CFG, seed=seed * 31 + 1)
            lig = build_ligand(cfg)
            assert lig.n_atoms == cfg.ligand_atoms

    def test_variant_differs(self):
        base = build_ligand(SMALL_COMPLEX_CFG)
        var = build_ligand_variant(SMALL_COMPLEX_CFG, 1)
        assert not np.array_equal(base.coords, var.coords)

    def test_validates(self, small_complex):
        report = validate_molecule(small_complex.ligand_crystal)
        assert report.ok, report.errors


class TestBuildComplex:
    def test_validated(self, small_complex):
        report = validate_complex(small_complex)
        assert report.ok, report.errors

    def test_crystal_outscores_initial(self, small_complex):
        s_crystal = interaction_score(
            small_complex.receptor, small_complex.ligand_crystal
        )
        s_initial = interaction_score(
            small_complex.receptor, small_complex.ligand_initial
        )
        assert s_crystal > s_initial

    def test_crystal_score_in_paper_ballpark(self, small_complex):
        # Paper: "500 at most".  Good poses land in the hundreds.
        s = interaction_score(
            small_complex.receptor, small_complex.ligand_crystal
        )
        assert 10.0 < s < 2000.0

    def test_deep_overlap_catastrophic(self, small_complex):
        # The paper's -100,000 threshold must be reachable by penetration.
        deep = small_complex.ligand_crystal.translated(
            -POCKET_AXIS * SMALL_COMPLEX_CFG.receptor_radius
        )
        assert interaction_score(small_complex.receptor, deep) < -100000.0

    def test_initial_on_pocket_axis(self, small_complex):
        c = small_complex.ligand_initial.centroid()
        axis_component = float(c @ POCKET_AXIS)
        transverse = np.linalg.norm(c - axis_component * POCKET_AXIS)
        assert axis_component > SMALL_COMPLEX_CFG.receptor_radius
        assert transverse < 1.0

    def test_initial_com_distance_positive(self, small_complex):
        d = small_complex.initial_com_distance
        assert d > SMALL_COMPLEX_CFG.receptor_radius

    def test_ligand_poses_same_molecule(self, small_complex):
        a = small_complex.ligand_crystal
        b = small_complex.ligand_initial
        assert a.symbols == b.symbols
        np.testing.assert_array_equal(a.bonds, b.bonds)
        # Same internal geometry (rigid): centered coords match.
        ca = a.coords - a.centroid()
        cb = b.coords - b.centroid()
        np.testing.assert_allclose(ca, cb, atol=1e-9)

    def test_paper_scale_counts(self):
        cfg = ComplexConfig()  # defaults = 2BSM scale
        assert cfg.receptor_atoms == 3264
        assert cfg.ligand_atoms == 45
