"""Pose parameterization: moves, codecs, torsion application."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem.molecule import Molecule
from repro.chem.transforms import Quaternion
from repro.metadock.pose import Pose, TorsionDriver, apply_pose, random_pose


def chain_template(n: int = 5) -> Molecule:
    # Zig-zag chain: atoms off the bond axes so torsions actually move
    # them (a collinear chain is torsion-invariant).
    coords = np.stack(
        [
            np.arange(n) * 1.3,
            0.6 * (np.arange(n) % 2),
            0.2 * np.arange(n),
        ],
        axis=1,
    )
    coords = coords - coords.mean(axis=0)
    return Molecule.from_symbols(
        ["C"] * n, coords, bonds=[[i, i + 1] for i in range(n - 1)]
    )


class TestPoseMoves:
    def test_identity(self):
        p = Pose.identity()
        np.testing.assert_array_equal(p.translation, 0.0)
        assert p.orientation.approx_equal(Quaternion.identity())

    def test_translated(self):
        p = Pose.identity().translated([1, 2, 3])
        np.testing.assert_allclose(p.translation, [1, 2, 3])

    def test_translations_compose(self):
        p = Pose.identity().translated([1, 0, 0]).translated([0, 1, 0])
        np.testing.assert_allclose(p.translation, [1, 1, 0])

    def test_rotation_composes_exactly(self):
        p = Pose.identity()
        for _ in range(720):
            p = p.rotated("z", math.radians(0.5))
        # 720 x 0.5 deg = 360 deg = identity (no drift).
        assert p.orientation.approx_equal(Quaternion.identity(), tol=1e-9)

    def test_inverse_rotation_cancels(self):
        p = Pose.identity().rotated("x", 0.3).rotated("x", -0.3)
        assert p.orientation.approx_equal(Quaternion.identity())

    def test_twist_bounds_checked(self):
        p = Pose.identity(n_torsions=2)
        with pytest.raises(IndexError):
            p.twisted(2, 0.1)
        with pytest.raises(IndexError):
            Pose.identity().twisted(0, 0.1)

    def test_twist_accumulates(self):
        p = Pose.identity(2).twisted(0, 0.2).twisted(0, 0.3)
        assert p.torsions[0] == pytest.approx(0.5)
        assert p.torsions[1] == 0.0

    def test_immutability(self):
        p = Pose.identity()
        q = p.translated([1, 0, 0])
        np.testing.assert_array_equal(p.translation, 0.0)
        assert q is not p


class TestPoseVectorCodec:
    @given(st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip(self, n_torsions):
        rng = np.random.default_rng(n_torsions)
        p = random_pose(rng, np.zeros(3), 5.0, n_torsions)
        v = p.to_vector()
        assert v.shape == (7 + n_torsions,)
        q = Pose.from_vector(v, n_torsions)
        np.testing.assert_allclose(q.translation, p.translation)
        assert q.orientation.approx_equal(p.orientation, tol=1e-9)
        np.testing.assert_allclose(q.torsions, p.torsions)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            Pose.from_vector(np.zeros(8), n_torsions=0)

    def test_from_vector_normalizes_quaternion(self):
        v = np.array([0, 0, 0, 2.0, 0, 0, 0])
        p = Pose.from_vector(v)
        assert p.orientation.norm() == pytest.approx(1.0)


class TestApplyPose:
    def test_identity_is_noop(self):
        mol = chain_template()
        out = apply_pose(mol, Pose.identity())
        np.testing.assert_allclose(out, mol.coords)

    def test_translation_moves_centroid(self):
        mol = chain_template()
        out = apply_pose(mol, Pose.identity().translated([5, 0, 0]))
        np.testing.assert_allclose(out.mean(axis=0), [5, 0, 0], atol=1e-12)

    def test_rotation_preserves_shape(self):
        mol = chain_template()
        pose = Pose.identity().rotated([1, 1, 1], 0.7)
        out = apply_pose(mol, pose)
        d_in = np.linalg.norm(mol.coords[0] - mol.coords[-1])
        d_out = np.linalg.norm(out[0] - out[-1])
        assert d_out == pytest.approx(d_in)

    def test_torsions_without_driver_rejected(self):
        mol = chain_template()
        with pytest.raises(ValueError):
            apply_pose(mol, Pose.identity(1))


class TestTorsionDriver:
    def test_rotates_only_one_side(self):
        mol = chain_template(5)
        driver = TorsionDriver(mol, [(1, 2)])
        out = driver.apply(mol.coords, [math.pi / 2])
        # i-side atoms {0, 1} untouched; atom 2 lies on the rotation axis
        # (the 1->2 bond) so it stays; atoms 3, 4 move.
        np.testing.assert_allclose(out[:2], mol.coords[:2])
        np.testing.assert_allclose(out[2], mol.coords[2], atol=1e-9)
        assert not np.allclose(out[3:], mol.coords[3:])

    def test_bond_lengths_preserved(self):
        mol = chain_template(6)
        driver = TorsionDriver(mol, [(1, 2), (3, 4)])
        out = driver.apply(mol.coords, [0.8, -1.1])
        for i, j in mol.bonds:
            before = np.linalg.norm(mol.coords[j] - mol.coords[i])
            after = np.linalg.norm(out[j] - out[i])
            assert after == pytest.approx(before, abs=1e-9)

    def test_zero_angles_noop(self):
        mol = chain_template()
        driver = TorsionDriver(mol, [(1, 2)])
        out = driver.apply(mol.coords, [0.0])
        np.testing.assert_array_equal(out, mol.coords)

    def test_wrong_torsion_count_rejected(self):
        mol = chain_template()
        driver = TorsionDriver(mol, [(1, 2)])
        with pytest.raises(ValueError):
            driver.apply(mol.coords, [0.1, 0.2])

    def test_full_turn_is_identity(self):
        mol = chain_template()
        driver = TorsionDriver(mol, [(1, 2)])
        out = driver.apply(mol.coords, [2 * math.pi])
        np.testing.assert_allclose(out, mol.coords, atol=1e-9)


class TestRandomPose:
    def test_within_radius(self, rng):
        center = np.array([1.0, 2.0, 3.0])
        for _ in range(50):
            p = random_pose(rng, center, 4.0)
            assert np.linalg.norm(p.translation - center) <= 4.0 + 1e-9

    def test_torsions_in_range(self, rng):
        p = random_pose(rng, np.zeros(3), 1.0, n_torsions=3)
        assert len(p.torsions) == 3
        assert all(-math.pi <= t <= math.pi for t in p.torsions)

    def test_deterministic_given_rng(self):
        a = random_pose(np.random.default_rng(5), np.zeros(3), 2.0)
        b = random_pose(np.random.default_rng(5), np.zeros(3), 2.0)
        np.testing.assert_array_equal(a.translation, b.translation)
