"""NoisyNet layers and the noisy/Polyak agent options."""

import numpy as np
import pytest

from repro.nn.gradcheck import numerical_gradient
from repro.nn.noisy import (
    NoisyDense,
    build_noisy_mlp,
    resample_network_noise,
    zero_network_noise,
)
from repro.rl.agent import AgentConfig, DQNAgent


class TestNoisyDense:
    def test_zero_noise_is_affine(self, rng):
        layer = NoisyDense(4, 3, rng=0)
        layer.zero_noise()
        x = rng.normal(size=(5, 4))
        np.testing.assert_allclose(
            layer.forward(x), x @ layer.mu_w + layer.mu_b
        )

    def test_noise_perturbs_output(self, rng):
        layer = NoisyDense(4, 3, rng=0)
        x = rng.normal(size=(2, 4))
        layer.resample_noise()
        a = layer.forward(x)
        layer.resample_noise()
        b = layer.forward(x)
        assert not np.allclose(a, b)

    def test_noise_fixed_between_resamples(self, rng):
        layer = NoisyDense(4, 3, rng=0)
        x = rng.normal(size=(2, 4))
        a = layer.forward(x)
        b = layer.forward(x)
        np.testing.assert_allclose(a, b)

    def test_gradcheck_all_parameters(self, rng):
        layer = NoisyDense(3, 2, rng=0)
        layer.resample_noise()
        x = rng.normal(size=(4, 3))
        g_out = rng.normal(size=(4, 2))
        layer.zero_grad()
        layer.forward(x, train=True)
        analytic_in = layer.backward(g_out)
        analytic = [g.copy() for g in layer.grads()]

        def f():
            return float((layer.forward(x, train=False) * g_out).sum())

        for p, g in zip(layer.params(), analytic):
            num = numerical_gradient(f, p)
            np.testing.assert_allclose(g, num, rtol=1e-5, atol=1e-8)
        x_var = x.copy()

        def fx():
            return float((layer.forward(x_var, train=False) * g_out).sum())

        num_in = numerical_gradient(fx, x_var)
        np.testing.assert_allclose(analytic_in, num_in, rtol=1e-5, atol=1e-8)

    def test_mean_sigma_positive(self):
        assert NoisyDense(4, 3, rng=0).mean_sigma() > 0

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            NoisyDense(0, 3)


class TestNoisyMlp:
    def test_helpers_affect_all_layers(self, rng):
        net = build_noisy_mlp(4, (6,), 2, rng=0)
        x = rng.normal(size=(2, 4))
        zero_network_noise(net)
        base = net.predict(x)
        resample_network_noise(net)
        assert not np.allclose(net.predict(x), base)
        zero_network_noise(net)
        np.testing.assert_allclose(net.predict(x), base)

    def test_trains_bandit(self, rng):
        from repro.nn.losses import MSELoss
        from repro.nn.optimizers import Adam

        net = build_noisy_mlp(3, (16,), 1, rng=0)
        opt = Adam(net.params(), net.grads(), lr=0.01)
        loss = MSELoss()
        X = rng.normal(size=(128, 3))
        Y = X[:, :1] * 2.0
        for _ in range(300):
            resample_network_noise(net)
            idx = rng.integers(0, 128, size=16)
            net.zero_grad()
            pred = net.forward(X[idx])
            _v, g = loss(pred, Y[idx])
            net.backward(g)
            opt.step()
        zero_network_noise(net)
        final, _ = loss(net.predict(X), Y)
        assert final < 0.5


class TestNoisyAgent:
    def _agent(self, **kw) -> DQNAgent:
        return DQNAgent(
            AgentConfig(
                state_dim=4,
                n_actions=3,
                hidden_sizes=(8,),
                replay_capacity=128,
                minibatch_size=4,
                initial_exploration_steps=0,
                learning_rate=0.01,
                noisy=True,
                seed=0,
                **kw,
            )
        )

    def test_epsilon_always_zero(self):
        agent = self._agent()
        assert agent.policy.epsilon(0) == 0.0
        assert agent.policy.epsilon(10**6) == 0.0

    def test_acting_explores_through_noise(self):
        agent = self._agent()
        s = np.ones(4)
        actions = {agent.act(s, t)[0] for t in range(50)}
        assert len(actions) >= 2  # noise-driven variety without epsilon

    def test_greedy_is_deterministic(self):
        agent = self._agent()
        s = np.ones(4)
        assert len({agent.greedy_action(s) for _ in range(10)}) == 1

    def test_learns(self, rng):
        agent = self._agent()
        for _ in range(60):
            s = rng.normal(size=4)
            a = int(rng.integers(3))
            agent.remember(s, a, 1.0 if a == 0 else -1.0, s, True)
        for _ in range(100):
            info = agent.learn()
        assert np.isfinite(info.loss)

    def test_noisy_dueling_rejected(self):
        with pytest.raises(ValueError):
            self._agent(dueling=True)


class TestPolyakUpdates:
    def test_soft_update_moves_target(self, rng):
        agent = DQNAgent(
            AgentConfig(
                state_dim=4,
                n_actions=2,
                hidden_sizes=(8,),
                replay_capacity=64,
                minibatch_size=4,
                initial_exploration_steps=0,
                learning_rate=0.05,
                target_update_tau=0.1,
                seed=0,
            )
        )
        for _ in range(20):
            s = rng.normal(size=4)
            agent.remember(s, 0, 1.0, s, True)
        s = np.ones(4)
        before_gap = np.abs(
            agent.q_net.predict(s) - agent.target_net.predict(s)
        ).max()
        for _ in range(30):
            agent.learn()
        online = agent.q_net.predict(s)
        target = agent.target_net.predict(s)
        # The target tracks the online net without hard syncs.
        assert agent.target_syncs == 0
        gap = np.abs(online - target).max()
        assert gap < 1.0  # tracked closely despite 30 updates

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            AgentConfig(state_dim=2, n_actions=2, target_update_tau=0.0)
        with pytest.raises(ValueError):
            AgentConfig(state_dim=2, n_actions=2, target_update_tau=1.5)

    def test_tau_one_equals_hard_sync(self, rng):
        agent = DQNAgent(
            AgentConfig(
                state_dim=4,
                n_actions=2,
                hidden_sizes=(8,),
                replay_capacity=64,
                minibatch_size=4,
                initial_exploration_steps=0,
                learning_rate=0.01,
                target_update_tau=1.0,
                seed=0,
            )
        )
        for _ in range(10):
            s = rng.normal(size=4)
            agent.remember(s, 0, 1.0, s, True)
        agent.learn()
        s = np.ones(4)
        np.testing.assert_allclose(
            agent.q_net.predict(s), agent.target_net.predict(s)
        )
