"""End-to-end integration: the full stack wired together."""

import numpy as np
import pytest

from repro import ci_scale_config, quick_training_run
from repro.chem.builders import build_complex
from repro.env.docking_env import make_env
from repro.env.wrappers import EpisodeRecorder, StateNormalizer, TimeLimit
from repro.experiments.figure4 import build_agent
from repro.metadock.metaheuristic import MetaheuristicSchema
from repro.metadock.strategies import scatter_search_params
from repro.rl.trainer import Trainer, greedy_rollout


class TestQuickTrainingRun:
    def test_runs_and_summarizes(self):
        result = quick_training_run(episodes=5, seed=0)
        assert len(result.history.episodes) == 5
        assert "episodes: 5" in result.summary()


class TestFullStackTraining:
    def test_wrapped_env_training(self, tiny_run_config):
        cfg = tiny_run_config
        built = build_complex(cfg.complex)
        env = TimeLimit(
            StateNormalizer(make_env(cfg, built)), cfg.max_steps_per_episode
        )
        try:
            agent = build_agent(cfg, env.state_dim, env.n_actions)
            history = Trainer(
                env,
                agent,
                episodes=4,
                max_steps_per_episode=cfg.max_steps_per_episode,
                learning_start=cfg.learning_start,
                target_update_steps=cfg.target_update_steps,
            ).run()
            assert len(history.episodes) == 4
            assert np.isfinite(history.best_score)
        finally:
            env.close()

    def test_recorder_captures_docking_trace(self, tiny_run_config):
        built = build_complex(tiny_run_config.complex)
        env = EpisodeRecorder(make_env(tiny_run_config, built))
        try:
            env.reset()
            for a in [0, 5, 5, 5]:
                env.step(a)
            env.reset()
            assert len(env.episodes) == 1
            trace = env.episodes[0]
            assert len(trace) == 4
            assert all(np.isfinite(t["score"]) for t in trace)
        finally:
            env.close()

    def test_trained_agent_checkpoint_roundtrip(self, tmp_path, tiny_run_config):
        from repro.nn.checkpoints import load_network, save_network

        cfg = tiny_run_config
        built = build_complex(cfg.complex)
        env = make_env(cfg, built)
        try:
            agent = build_agent(cfg, env.state_dim, env.n_actions)
            Trainer(
                env, agent, episodes=2,
                max_steps_per_episode=cfg.max_steps_per_episode,
            ).run()
            path = tmp_path / "agent.npz"
            save_network(agent.q_net, path)
            clone = build_agent(cfg, env.state_dim, env.n_actions)
            load_network(clone.q_net, path)
            s = env.reset()
            np.testing.assert_allclose(
                agent.predict_q(s), clone.predict_q(s)
            )
        finally:
            env.close()


class TestSearchVsEngineConsistency:
    def test_metaheuristic_best_pose_rescoreable(self, engine):
        res = MetaheuristicSchema(
            engine, scatter_search_params(200), seed=0
        ).run()
        rescored = engine.score_pose(res.best_pose)
        assert rescored == pytest.approx(res.best_score, rel=1e-9)

    def test_greedy_rollout_on_docking_env(self, tiny_run_config):
        built = build_complex(tiny_run_config.complex)
        env = make_env(tiny_run_config, built)
        try:
            agent = build_agent(tiny_run_config, env.state_dim, env.n_actions)
            best, trace = greedy_rollout(env, agent, 15)
            assert len(trace) <= 15
            assert np.isfinite(best)
        finally:
            env.close()


class TestCrossSeedStability:
    def test_three_seeds_complete(self):
        for seed in range(3):
            result = quick_training_run(episodes=3, seed=seed)
            assert len(result.history.episodes) == 3

    def test_different_seeds_different_trajectories(self):
        a = quick_training_run(episodes=3, seed=0)
        b = quick_training_run(episodes=3, seed=1)
        assert not np.allclose(
            a.history.reward_series(), b.history.reward_series()
        )
