"""The multi-process actor/learner runtime (:mod:`repro.rl.distributed`).

Determinism is the design center, so the heavyweight assertions here
are *bit-level*: two fresh runs produce identical Q-networks, and an
interrupted-then-resumed checkpointed run reproduces the uninterrupted
run's weights and episode history exactly.  Around those: validation
(unsupported agents, alignment contract), learner-side episode
reconstruction, per-actor telemetry, checkpoint state round-trips, and
the signal-masking contract (workers ignore SIGINT/SIGTERM; the parent
owns shutdown).
"""

import multiprocessing as mp
import os
import signal
import time

import numpy as np
import pytest

from repro.config import ci_scale_config
from repro.nn.checkpoints import CheckpointMismatchError
from repro.rl.distributed import ActorLearnerTrainer
from repro.telemetry.metrics import MetricsRegistry

from tests.test_rl_trainer import CountingEnv, tiny_agent

fork_required = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="the actor/learner runtime needs a fork-capable platform",
)


def counting_trainer(agent, n_actors=2, horizon=7, **kw):
    kw.setdefault("state_dim", 2)
    kw.setdefault("sync_every", 5)
    kw.setdefault("ring_capacity", 16)
    kw.setdefault("max_steps_per_episode", 10)
    kw.setdefault("learning_start", 8)
    kw.setdefault("target_update_steps", 10)
    kw.setdefault("train_interval", 2)
    kw.setdefault("seed", 0)
    return ActorLearnerTrainer(
        [(lambda: CountingEnv(horizon=horizon))] * n_actors, agent, **kw
    )


class TestValidation:
    def test_config_rejects_distributional_actor_learner(self):
        with pytest.raises(ValueError, match="distributional"):
            ci_scale_config(
                episodes=2,
                trainer="actor-learner",
                variant="distributional",
            )

    def test_config_rejects_unknown_trainer_and_bad_counts(self):
        with pytest.raises(ValueError):
            ci_scale_config(episodes=2, trainer="bogus")
        with pytest.raises(ValueError):
            ci_scale_config(
                episodes=2, trainer="actor-learner", num_actors=0
            )
        with pytest.raises(ValueError):
            ci_scale_config(episodes=2, actor_sync_every=0)
        with pytest.raises(ValueError):
            ci_scale_config(episodes=2, actor_ring_capacity=0)

    def test_trainer_rejects_distributional_agent(self):
        from repro.rl.distributional import DistributionalDQNAgent
        from repro.rl.agent import AgentConfig

        agent = DistributionalDQNAgent(
            AgentConfig(state_dim=2, n_actions=2, hidden_sizes=(4,))
        )
        with pytest.raises(ValueError, match="distributional"):
            counting_trainer(agent)

    def test_trainer_rejects_noisy_agent(self):
        agent = tiny_agent(noisy=True)
        with pytest.raises(ValueError, match="Noisy"):
            counting_trainer(agent)

    def test_run_alignment_contract(self):
        trainer = counting_trainer(tiny_agent())
        # Neither error path spawns any worker process.
        with pytest.raises(ValueError, match="multiple of"):
            trainer.run(7)  # 7 % 2 actors != 0
        with pytest.raises(ValueError, match="broadcast"):
            trainer.run(25, start_step=5)  # 5 % (2*5) != 0
        assert trainer._procs is None


@fork_required
class TestRuntimeSemantics:
    def test_episode_reconstruction(self):
        agent = tiny_agent()
        trainer = counting_trainer(agent, horizon=7)
        try:
            stats = trainer.run(28)  # 14 steps/actor = 2 episodes each
        finally:
            trainer.close()
        assert stats.total_steps == 28
        assert stats.episodes_completed == 4
        eps = trainer.history.episodes
        assert len(eps) == 4
        assert all(e.steps == 7 for e in eps)
        assert all(e.termination == "terminal" for e in eps)
        assert [e.episode for e in eps] == [0, 1, 2, 3]
        assert trainer.history.total_steps == 28
        # CountingEnv scores count up under greedy-ish play; the
        # learner rebuilt them from ring payloads.
        assert np.isfinite(stats.best_score)

    def test_partial_episodes_close_at_segment_boundary(self):
        agent = tiny_agent()
        trainer = counting_trainer(agent, horizon=100)
        try:
            trainer.run(30)  # 15 steps/actor: cap at 10, partial 5
        finally:
            trainer.close()
        terms = [e.termination for e in trainer.history.episodes]
        assert terms.count("time-limit") == 2
        assert terms.count("segment-boundary") == 2

    def test_learning_happens_and_cadence_counts(self):
        agent = tiny_agent()
        trainer = counting_trainer(agent)
        try:
            trainer.run(40)
        finally:
            trainer.close()
        # train_interval=2, learning_start=8, can_learn after 4
        # remembers: learns at every even consumed count from 8 on.
        assert agent.learn_steps == 17
        assert agent.target_syncs == 4  # consumed 10, 20, 30, 40

    def test_telemetry_metrics(self):
        registry = MetricsRegistry()
        agent = tiny_agent()
        trainer = counting_trainer(agent, metrics=registry)
        try:
            trainer.run(40)
        finally:
            trainer.close()
        g = lambda name: registry.gauge("actor_learner/" + name).value
        assert g("num-actors") == 2
        assert g("consumed-transitions") == 40
        assert g("weight-version") == 4
        assert g("ring-depth-actor0") == 0  # drained-empty invariant
        assert g("transitions-per-second-actor1") > 0
        assert 0.0 <= g("learner-idle-fraction") <= 1.0
        assert (
            registry.counter("actor_learner/transitions-actor0").value
            == 20
        )
        rows = {
            r["name"]: r
            for r in registry.snapshot_rows()
            if r["kind"] == "histogram"
        }
        staleness = rows["actor_learner/weight-staleness-steps"]
        assert staleness["count"] == 40
        assert staleness["max"] <= 2 * trainer.publish_every

    def test_state_dict_roundtrip_and_mismatch(self):
        agent = tiny_agent()
        trainer = counting_trainer(agent)
        try:
            trainer.run(20)
            state = trainer.state_dict()
        finally:
            trainer.close()
        other = counting_trainer(tiny_agent())
        other.load_state_dict(state)
        assert other._weight_version == trainer._weight_version
        assert other._episode_index == trainer._episode_index
        assert len(other.history.episodes) == len(
            trainer.history.episodes
        )
        assert other._actor_rng[0] is not None
        mismatched = counting_trainer(tiny_agent(), n_actors=3)
        with pytest.raises(CheckpointMismatchError):
            mismatched.load_state_dict(state)

    def test_run_to_run_determinism(self):
        weights = []
        for _ in range(2):
            agent = tiny_agent()
            trainer = counting_trainer(agent)
            try:
                trainer.run(60)
            finally:
                trainer.close()
            weights.append([p.copy() for p in agent.q_net.params()])
        for a, b in zip(*weights):
            np.testing.assert_array_equal(a, b)

    def test_segmented_runs_are_deterministic(self):
        # Segment boundaries are part of the trajectory (actors reset
        # their envs at each segment start), so the determinism
        # contract is: identical segmentation => bit-identical weights
        # and history.  That is exactly what checkpoint/resume needs --
        # the resumed run replays the same segment plan.
        def segmented_run():
            agent = tiny_agent()
            trainer = counting_trainer(agent)
            try:
                trainer.run(20)
                trainer.run(60, start_step=20)
            finally:
                trainer.close()
            return agent, trainer.history

        agent_one, hist_one = segmented_run()
        agent_two, hist_two = segmented_run()
        for a, b in zip(
            agent_one.q_net.params(), agent_two.q_net.params()
        ):
            np.testing.assert_array_equal(a, b)
        key = lambda e: (e.episode, e.steps, e.total_reward, e.termination)
        assert [key(e) for e in hist_one.episodes] == [
            key(e) for e in hist_two.episodes
        ]


@fork_required
class TestSignalMasking:
    def test_actors_ignore_sigint_and_sigterm(self):
        agent = tiny_agent()
        trainer = counting_trainer(agent)
        try:
            trainer.run(20)
            pids = [p.pid for p in trainer._procs]
            for pid in pids:
                os.kill(pid, signal.SIGINT)
                os.kill(pid, signal.SIGTERM)
            time.sleep(0.3)
            assert all(p.is_alive() for p in trainer._procs)
            # The fleet still works after the signal storm.
            stats = trainer.run(40, start_step=20)
            assert stats.total_steps == 40
        finally:
            trainer.close()
        assert all(not p.is_alive() for p in trainer._procs or [])

    def test_async_vector_workers_ignore_signals(self):
        from repro.env.factory import make_vector_env

        with make_vector_env(
            env_fns=[lambda: CountingEnv(horizon=50)] * 2,
            backend="async",
            step_timeout=20.0,
        ) as venv:
            venv.reset()
            venv.step([0, 0])
            for proc in venv._procs:
                os.kill(proc.pid, signal.SIGINT)
                os.kill(proc.pid, signal.SIGTERM)
            time.sleep(0.3)
            states, _r, _d, _i = venv.step([0, 0])
            np.testing.assert_array_equal(states, [[2, 2], [2, 2]])
            assert venv.worker_restarts == 0


@fork_required
class TestFigure4Integration:
    """End-to-end over the real docking stack (small complex)."""

    def _cfg(self):
        return ci_scale_config(episodes=4, seed=0, max_steps=10).replace(
            trainer="actor-learner",
            num_actors=2,
            actor_sync_every=5,
            actor_ring_capacity=32,
        )

    def test_interrupt_resume_bit_exact(self, tmp_path):
        from repro.experiments.figure4 import run_figure4_experiment
        from repro.runtime.loop import RunInterrupted, RuntimeContext
        from repro.runtime.signals import ShutdownGuard

        cfg = self._cfg()

        # Reference: uninterrupted checkpointed run.
        ref_dir = tmp_path / "ref"
        ref = run_figure4_experiment(
            cfg, runtime=RuntimeContext(ref_dir, checkpoint_every=2)
        )

        # Interrupted run: request shutdown right after the first
        # cadence checkpoint lands, then resume in a fresh context.
        run_dir = tmp_path / "resumed"
        guard = ShutdownGuard()
        rt = RuntimeContext(run_dir, checkpoint_every=2, guard=guard)
        original_save = rt.save_checkpoint
        saves = []

        def save_and_stop(phase, state, meta):
            path = original_save(phase, state, meta)
            saves.append(path)
            if len(saves) == 1:
                guard.request_stop()
            return path

        rt.save_checkpoint = save_and_stop
        with pytest.raises(RunInterrupted):
            run_figure4_experiment(cfg, runtime=rt)

        resumed = run_figure4_experiment(
            cfg, runtime=RuntimeContext(run_dir, checkpoint_every=2)
        )

        for a, b in zip(
            ref.agent.q_net.params(), resumed.agent.q_net.params()
        ):
            np.testing.assert_array_equal(a, b)
        key = lambda e: (
            e.episode, e.steps, e.total_reward, e.avg_max_q,
            e.best_score, e.termination,
        )
        assert [key(e) for e in ref.history.episodes] == [
            key(e) for e in resumed.history.episodes
        ]
