"""Composite scorer: breakdown, sign convention, batching, symmetries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem.molecule import Molecule
from repro.chem.transforms import random_rotation, rigid_transform
from repro.scoring.composite import (
    interaction_breakdown,
    interaction_energy,
    interaction_score,
    score_pose_batch,
)


def random_molecules(seed: int, n_a: int = 9, n_b: int = 5):
    rng = np.random.default_rng(seed)
    a = Molecule.from_symbols(
        list(rng.choice(["C", "N", "O", "H"], size=n_a)),
        rng.normal(size=(n_a, 3)) * 4.0,
        bonds=[[i, i + 1] for i in range(n_a - 1)],
    )
    b = Molecule.from_symbols(
        list(rng.choice(["C", "N", "O", "H"], size=n_b)),
        rng.normal(size=(n_b, 3)) * 2.0 + np.array([12.0, 0, 0]),
        bonds=[[i, i + 1] for i in range(n_b - 1)],
    )
    return a, b


class TestBreakdown:
    def test_score_is_negated_energy(self):
        a, b = random_molecules(0)
        bd = interaction_breakdown(a, b)
        assert bd.score == pytest.approx(-bd.energy)
        assert interaction_score(a, b) == pytest.approx(
            -interaction_energy(a, b)
        )

    def test_terms_sum_to_energy(self):
        a, b = random_molecules(1)
        bd = interaction_breakdown(a, b)
        assert bd.energy == pytest.approx(
            bd.electrostatic + bd.lennard_jones + bd.hydrogen_bond
        )

    def test_long_range_score_decays_as_monopole(self):
        # With non-zero net charges the Coulomb monopole term survives at
        # long range (1/r decay); LJ and H-bond must be gone.
        a, b = random_molecules(2)
        s500 = interaction_score(a, b.translated([500.0, 0.0, 0.0]))
        s5000 = interaction_score(a, b.translated([5000.0, 0.0, 0.0]))
        assert abs(s5000) < abs(s500) < 10.0
        assert abs(s5000) == pytest.approx(abs(s500) / 10.0, rel=0.05)

    def test_overlap_score_hugely_negative(self):
        a, _ = random_molecules(3)
        clone = a.copy()
        assert interaction_score(a, clone) < -1e6

    def test_no_hbond_pairs_zero_term(self):
        rng = np.random.default_rng(4)
        a = Molecule.from_symbols(["C"] * 4, rng.normal(size=(4, 3)) * 3)
        b = Molecule.from_symbols(
            ["C"] * 3, rng.normal(size=(3, 3)) * 3 + 8.0
        )
        bd = interaction_breakdown(a, b)
        assert bd.hydrogen_bond == 0.0


class TestSymmetries:
    @given(st.integers(0, 20))
    @settings(max_examples=15, deadline=None)
    def test_joint_translation_invariance(self, seed):
        a, b = random_molecules(seed)
        shift = np.array([3.7, -1.2, 9.9])
        s1 = interaction_score(a, b)
        s2 = interaction_score(a.translated(shift), b.translated(shift))
        assert s2 == pytest.approx(s1, rel=1e-9)

    @given(st.integers(0, 20))
    @settings(max_examples=15, deadline=None)
    def test_joint_rotation_invariance(self, seed):
        a, b = random_molecules(seed)
        rot = random_rotation(seed + 100)
        a2 = a.with_coords(rigid_transform(a.coords, rot, center=[0, 0, 0]))
        b2 = b.with_coords(rigid_transform(b.coords, rot, center=[0, 0, 0]))
        assert interaction_score(a2, b2) == pytest.approx(
            interaction_score(a, b), rel=1e-9
        )

    def test_moving_one_molecule_changes_score(self):
        a, b = random_molecules(7)
        s1 = interaction_score(a, b)
        s2 = interaction_score(a, b.translated([2.0, 0, 0]))
        assert s1 != pytest.approx(s2)


class TestBatchScoring:
    def test_matches_single_pose(self):
        a, b = random_molecules(8)
        batch = np.stack(
            [b.coords, b.coords + [1.0, 0, 0], b.coords + [0, 2.0, 0]]
        )
        scores = score_pose_batch(a, b, batch)
        for k in range(3):
            expected = interaction_score(a, b.with_coords(batch[k]))
            assert scores[k] == pytest.approx(expected, rel=1e-9)

    def test_chunking_consistent(self):
        a, b = random_molecules(9)
        batch = np.stack([b.coords + [k * 0.5, 0, 0] for k in range(10)])
        full = score_pose_batch(a, b, batch, chunk=64)
        tiny = score_pose_batch(a, b, batch, chunk=3)
        np.testing.assert_allclose(full, tiny, rtol=1e-12)

    def test_shape_validated(self):
        a, b = random_molecules(10)
        with pytest.raises(ValueError):
            score_pose_batch(a, b, np.zeros((2, b.n_atoms + 1, 3)))

    def test_hbond_toggle(self):
        # Guaranteed donor/acceptor pair at H-bond range.
        a = Molecule.from_symbols(
            ["N", "C"], [[0.0, 0, 0], [1.4, 0, 0]], bonds=[[0, 1]]
        )
        b = Molecule.from_symbols(["O"], [[-2.9, 0.0, 0.0]])
        close = np.stack([b.coords])
        with_hb = score_pose_batch(a, b, close, include_hbond=True)
        without = score_pose_batch(a, b, close, include_hbond=False)
        assert with_hb[0] != pytest.approx(without[0])

    def test_empty_batch(self):
        a, b = random_molecules(12)
        assert score_pose_batch(a, b, np.zeros((0, b.n_atoms, 3))).size == 0
