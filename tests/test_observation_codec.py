"""Observation codec layer: specs, codecs, config knob, factory wiring."""

import dataclasses

import numpy as np
import pytest

from repro.chem.descriptors import (
    N_MOLECULE_DESCRIPTORS,
    compute_descriptors,
    pocket_feature_dim,
)
from repro.config import ci_scale_config, config_from_dict
from repro.env.docking_env import DockingEnv
from repro.env.factory import make_env, make_vector_env
from repro.env.flexible_env import FlexibleDockingEnv
from repro.env.observation import (
    CODEC_REGISTRY,
    OBSERVATION_MODES,
    CompactCodec,
    DescriptorCodec,
    ObservationSpec,
    RawCodec,
    make_codec,
)


class TestObservationSpec:
    def test_dict_roundtrip(self):
        spec = ObservationSpec(
            mode="compact", dim=42, dtype="float32", full_dim=100,
            static_dim=58,
        )
        assert ObservationSpec.from_dict(spec.as_dict()) == spec

    def test_from_dict_ignores_unknown_keys(self):
        spec = ObservationSpec(
            mode="raw", dim=7, dtype="float64", full_dim=7
        )
        data = dict(spec.as_dict(), future_field=True)
        assert ObservationSpec.from_dict(data) == spec

    def test_q_input_dim(self):
        compact = ObservationSpec(
            mode="compact", dim=42, dtype="float32", full_dim=100,
            static_dim=58,
        )
        raw = ObservationSpec(mode="raw", dim=100, dtype="float64",
                              full_dim=100)
        desc = ObservationSpec(mode="descriptor", dim=59, dtype="float32",
                               full_dim=100)
        # Compact agents reconstruct full states before the forward
        # pass; descriptor agents consume the emitted vector directly.
        assert compact.q_input_dim == 100
        assert raw.q_input_dim == 100
        assert desc.q_input_dim == 59

    def test_hashable(self):
        a = ObservationSpec(mode="raw", dim=7, dtype="float64", full_dim=7)
        b = ObservationSpec(mode="raw", dim=7, dtype="float64", full_dim=7)
        assert len({a, b}) == 1

    def test_modes_in_sync_with_config_literal(self):
        # config.py validates observation_mode against a literal set to
        # avoid a config -> env import cycle; this pins the two in sync.
        assert OBSERVATION_MODES == ("raw", "compact", "descriptor")
        assert set(CODEC_REGISTRY) == set(OBSERVATION_MODES)
        for mode in OBSERVATION_MODES:
            ci_scale_config(4, observation_mode=mode)


class TestMakeCodec:
    def test_unknown_mode(self, engine):
        with pytest.raises(ValueError, match="unknown observation mode"):
            make_codec("fourier", engine)

    def test_registry_dispatch(self, engine):
        assert isinstance(make_codec("raw", engine), RawCodec)
        assert isinstance(make_codec("compact", engine), CompactCodec)
        assert isinstance(make_codec("descriptor", engine), DescriptorCodec)


class TestRawCodec:
    def test_bit_identical_to_state_vector(self, engine):
        codec = make_codec("raw", engine)
        engine.reset()
        np.testing.assert_array_equal(codec.encode(), engine.state_vector())
        assert codec.spec.dim == codec.spec.full_dim == engine.state_dim()
        assert codec.spec.np_dtype == np.float64
        assert codec.static_state() is None


class TestCompactCodec:
    def test_matches_engine_views(self, engine):
        codec = make_codec("compact", engine)
        engine.reset()
        np.testing.assert_array_equal(codec.encode(), engine.dynamic_state())
        np.testing.assert_array_equal(
            codec.static_state(), engine.static_state()
        )
        assert codec.spec.dim == engine.dynamic_dim()
        assert codec.spec.static_dim == (
            engine.state_dim() - engine.dynamic_dim()
        )
        assert codec.spec.q_input_dim == engine.state_dim()


class TestDescriptorCodec:
    def test_dim_and_dtype(self, engine):
        codec = make_codec("descriptor", engine)
        t = engine.template
        assert codec.spec.dim == pocket_feature_dim(t.n_atoms, t.n_bonds)
        assert codec.spec.np_dtype == np.float32
        assert codec.spec.full_dim == engine.state_dim()
        engine.reset()
        state = codec.encode()
        assert state.shape == (codec.spec.dim,)
        assert state.dtype == np.float32
        assert np.all(np.isfinite(state))

    def test_paper_scale_fits_budget(self):
        # The paper ligand: 45 atoms, 44 bonds -> 281-dim state, well
        # under the 300-dim Q-network input budget.
        assert pocket_feature_dim(45, 44) == 281
        assert pocket_feature_dim(45, 44) <= 300

    def test_constant_descriptor_tail(self, engine):
        codec = make_codec("descriptor", engine)
        engine.reset()
        tail = compute_descriptors(engine.template).as_vector()
        state = codec.encode()
        np.testing.assert_allclose(
            state[-N_MOLECULE_DESCRIPTORS:],
            np.asarray(tail, dtype=np.float32),
        )
        engine.apply_action(0)
        moved = codec.encode()
        np.testing.assert_array_equal(
            moved[-N_MOLECULE_DESCRIPTORS:], state[-N_MOLECULE_DESCRIPTORS:]
        )

    def test_double_buffered(self, engine):
        # state(t) and next_state(t) must coexist for remember(): the
        # codec alternates two buffers, so an encode() result survives
        # exactly one more encode() call.
        codec = make_codec("descriptor", engine)
        engine.reset()
        first = codec.encode()
        snapshot = first.copy()
        engine.apply_action(0)
        second = codec.encode()
        assert second is not first
        np.testing.assert_array_equal(first, snapshot)
        assert not np.array_equal(second, snapshot)

    def test_deterministic(self, small_complex):
        from repro.metadock.engine import MetadockEngine

        states = []
        for _ in range(2):
            eng = MetadockEngine(
                small_complex, shift_length=0.8, rotation_angle_deg=5.0
            )
            codec = make_codec("descriptor", eng)
            eng.reset()
            eng.apply_action(2)
            states.append(codec.encode().copy())
        np.testing.assert_array_equal(states[0], states[1])

    def test_translation_moves_atom_block_only(self, engine):
        # A pure translation changes the pocket-relative atom block and
        # the COM globals but leaves bond vectors (internal geometry)
        # untouched.
        codec = make_codec("descriptor", engine)
        engine.reset()
        before = codec.encode().copy()
        engine.apply_action(0)  # +x shift
        after = codec.encode()
        m = engine.template.n_atoms
        b = engine.template.n_bonds
        assert not np.array_equal(after[: 3 * m], before[: 3 * m])
        np.testing.assert_array_equal(
            after[3 * m : 3 * m + 3 * b], before[3 * m : 3 * m + 3 * b]
        )


class TestConfigKnob:
    def test_default_raw(self):
        cfg = ci_scale_config(4)
        assert cfg.observation_mode == "raw"
        assert not cfg.compact_states

    def test_legacy_compact_flag_normalizes(self):
        cfg = ci_scale_config(4, compact_states=True)
        assert cfg.observation_mode == "compact"

    def test_mode_sets_legacy_flag(self):
        cfg = ci_scale_config(4, observation_mode="compact")
        assert cfg.compact_states

    def test_descriptor_keeps_flag_off(self):
        cfg = ci_scale_config(4, observation_mode="descriptor")
        assert not cfg.compact_states

    def test_descriptor_conflicts_with_compact_flag(self):
        with pytest.raises(ValueError, match="pick one observation codec"):
            ci_scale_config(
                4, compact_states=True, observation_mode="descriptor"
            )

    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown observation_mode"):
            ci_scale_config(4, observation_mode="onehot")

    def test_dict_roundtrip(self):
        cfg = ci_scale_config(4, observation_mode="descriptor")
        back = config_from_dict(dataclasses.asdict(cfg))
        assert back.observation_mode == "descriptor"
        assert back == cfg

    def test_pre_pr7_manifest_dict_still_loads(self):
        # Manifests written before the knob existed carry no
        # observation_mode key; compact_states alone must still map to
        # the compact codec.
        data = dataclasses.asdict(ci_scale_config(4, compact_states=True))
        del data["observation_mode"]
        assert config_from_dict(data).observation_mode == "compact"


class TestEnvWiring:
    def test_env_exposes_spec(self, env):
        assert env.observation_mode == "raw"
        assert env.observation_spec.mode == "raw"
        assert env.observation_space.shape == (env.observation_spec.dim,)
        assert env.state_dtype is np.float64

    def test_explicit_mode_conflict(self, engine):
        with pytest.raises(ValueError, match="conflicts"):
            DockingEnv(engine, compact_states=True, observation_mode="raw")

    def test_descriptor_env_emits_spec_shape(self, engine):
        env = DockingEnv(engine, observation_mode="descriptor")
        spec = env.observation_spec
        state = env.reset()
        assert state.shape == (spec.dim,)
        assert state.dtype == np.float32
        next_state, reward, done, info = env.step(0)
        assert next_state.shape == (spec.dim,)
        assert env.full_state().shape == (spec.full_dim,)
        assert env.state_dtype is np.float32

    def test_legacy_compact_flag(self, engine):
        env = DockingEnv(engine, compact_states=True)
        assert env.observation_mode == "compact"
        assert env.compact_states
        assert env.static_state() is not None


class TestFactory:
    def test_kind_validation(self, small_complex):
        cfg = ci_scale_config(4)
        with pytest.raises(ValueError, match="unknown env kind"):
            make_env(cfg, small_complex, kind="soft")

    def test_rigid_default(self, small_complex):
        cfg = ci_scale_config(4)
        env = make_env(cfg, small_complex)
        assert isinstance(env, DockingEnv)
        assert not isinstance(env, FlexibleDockingEnv)
        assert env.observation_mode == "raw"

    def test_flexible_kind(self, small_complex):
        cfg = ci_scale_config(4)
        env = make_env(cfg, small_complex, kind="flexible")
        assert isinstance(env, FlexibleDockingEnv)

    def test_mode_threads_through(self, small_complex):
        cfg = ci_scale_config(4, observation_mode="descriptor")
        env = make_env(cfg, small_complex)
        assert env.observation_mode == "descriptor"
        flex = make_env(cfg, small_complex, kind="flexible")
        assert flex.observation_mode == "descriptor"

    def test_legacy_shims_warn_and_delegate(self, small_complex):
        from repro.env import docking_env, flexible_env

        cfg = ci_scale_config(4)
        with pytest.warns(DeprecationWarning):
            env = docking_env.make_env(cfg, small_complex)
        assert isinstance(env, DockingEnv)
        with pytest.warns(DeprecationWarning):
            flex = flexible_env.make_flexible_env(cfg, small_complex)
        assert isinstance(flex, FlexibleDockingEnv)

    def test_sync_vector_env_exposes_spec(self, small_complex):
        cfg = ci_scale_config(4, observation_mode="descriptor")
        venv = make_vector_env(
            cfg, n_envs=2, backend="sync", builts=[small_complex] * 2
        )
        try:
            spec = venv.observation_spec
            assert spec.mode == "descriptor"
            assert venv.state_dim == spec.dim
            states = venv.reset()
            assert states.shape == (2, spec.dim)
        finally:
            venv.close()

    def test_sync_vector_env_rejects_mixed_specs(self, small_complex):
        cfg_raw = ci_scale_config(4)
        cfg_desc = ci_scale_config(4, observation_mode="descriptor")
        fns = [
            lambda: make_env(cfg_raw, small_complex),
            lambda: make_env(cfg_desc, small_complex),
        ]
        with pytest.raises(ValueError, match="environments disagree"):
            make_vector_env(env_fns=fns, backend="sync")
