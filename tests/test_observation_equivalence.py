"""Seeded pins for the observation codec layer.

Three load-bearing guarantees of PR 7:

1. ``observation_mode="raw"`` (and the new :func:`repro.env.factory.make_env`)
   reproduces the pre-codec pipeline bit-for-bit -- identical episode
   histories and network weights under both :class:`Trainer` and
   :class:`VectorTrainer`, for dense and compact replay;
2. descriptor-mode training is interrupt/resume bit-exact, like every
   other replay flavour (docs/CHECKPOINTS.md);
3. a checkpoint written under one codec refuses to resume under another
   (:class:`CheckpointMismatchError`) instead of silently mis-training.
"""

from __future__ import annotations

import dataclasses
import warnings

import numpy as np
import pytest

from repro.config import ci_scale_config
from repro.env import docking_env
from repro.env.factory import make_env, make_vector_env
from repro.experiments.figure4 import build_agent, build_agent_for_env
from repro.nn.checkpoints import CheckpointMismatchError
from repro.rl.trainer import Trainer
from repro.rl.vector_trainer import VectorTrainer
from repro.runtime import (
    RunInterrupted,
    RunLoop,
    RuntimeContext,
    ShutdownGuard,
    read_meta,
)


# ---------------------------------------------------------------------------
# helpers (mirroring tests/test_runtime_checkpoint.py)


def _assert_state_equal(a, b, path=""):
    assert type(a) is type(b), f"{path}: {type(a)} vs {type(b)}"
    if isinstance(a, dict):
        assert set(a) == set(b), f"{path}: keys {set(a) ^ set(b)}"
        for k in a:
            _assert_state_equal(a[k], b[k], f"{path}/{k}")
    elif isinstance(a, np.ndarray):
        assert a.dtype == b.dtype, path
        assert np.array_equal(a, b, equal_nan=True), path
    elif isinstance(a, float):
        assert a == b or (a != a and b != b), f"{path}: {a} vs {b}"
    else:
        assert a == b, f"{path}: {a} vs {b}"


def _assert_histories_equal(a, b):
    assert a.total_steps == b.total_steps
    assert len(a.episodes) == len(b.episodes)
    for ea, eb in zip(a.episodes, b.episodes):
        da, db = dataclasses.asdict(ea), dataclasses.asdict(eb)
        assert set(da) == set(db)
        for k in da:
            va, vb = da[k], db[k]
            if isinstance(va, float) and va != va:
                assert vb != vb, (k, va, vb)
            else:
                assert va == vb, (k, va, vb)


def _train(cfg, env):
    """Run cfg's training loop over env; returns (history, agent)."""
    agent = build_agent_for_env(cfg, env)
    trainer = Trainer(
        env,
        agent,
        episodes=cfg.episodes,
        max_steps_per_episode=cfg.max_steps_per_episode,
        learning_start=cfg.learning_start,
        target_update_steps=cfg.target_update_steps,
        train_interval=cfg.train_interval,
    )
    history = trainer.run()
    env.close()
    return history, agent


def _make_trainer(cfg, on_episode_end=None):
    env = make_env(cfg)
    agent = build_agent_for_env(cfg, env)
    trainer = Trainer(
        env,
        agent,
        episodes=cfg.episodes,
        max_steps_per_episode=cfg.max_steps_per_episode,
        learning_start=cfg.learning_start,
        target_update_steps=cfg.target_update_steps,
        train_interval=cfg.train_interval,
        on_episode_end=on_episode_end,
    )
    return env, agent, trainer


def _vector_train(cfg, total=48):
    venv = make_vector_env(cfg, n_envs=2, backend="sync")
    agent = build_agent(cfg, venv.state_dim, venv.n_actions)
    vtrainer = VectorTrainer(
        venv,
        agent,
        learning_start=cfg.learning_start,
        target_update_steps=cfg.target_update_steps,
        train_interval=cfg.train_interval,
    )
    stats = vtrainer.run(total)
    venv.close()
    return stats, agent


# ---------------------------------------------------------------------------
# 1. raw mode == pre-codec pipeline, bit for bit


class TestRawEquivalence:
    def test_trainer_dense(self):
        cfg = ci_scale_config(episodes=4, seed=11, max_steps=12)
        assert cfg.observation_mode == "raw"

        # Legacy entry point (pre-PR-7 call sites).
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy_env = docking_env.make_env(cfg)
        hist_a, agent_a = _train(cfg, legacy_env)

        # New factory, explicit raw codec.
        hist_b, agent_b = _train(
            ci_scale_config(
                episodes=4, seed=11, max_steps=12, observation_mode="raw"
            ),
            make_env(cfg),
        )
        _assert_histories_equal(hist_a, hist_b)
        _assert_state_equal(agent_a.state_dict(), agent_b.state_dict())

    def test_trainer_compact_replay(self):
        # Legacy compact_states flag == explicit "compact" codec mode.
        legacy = ci_scale_config(
            episodes=4, seed=7, max_steps=12, compact_states=True
        )
        explicit = ci_scale_config(
            episodes=4, seed=7, max_steps=12, observation_mode="compact"
        )
        assert legacy == explicit
        hist_a, agent_a = _train(legacy, make_env(legacy))
        hist_b, agent_b = _train(explicit, make_env(explicit))
        _assert_histories_equal(hist_a, hist_b)
        _assert_state_equal(agent_a.state_dict(), agent_b.state_dict())

    def test_vector_trainer(self):
        cfg = ci_scale_config(episodes=4, seed=13, max_steps=12)
        stats_a, agent_a = _vector_train(cfg)
        stats_b, agent_b = _vector_train(
            ci_scale_config(
                episodes=4, seed=13, max_steps=12, observation_mode="raw"
            )
        )
        assert stats_a.total_steps == stats_b.total_steps
        assert stats_a.best_score == stats_b.best_score
        assert stats_a.mean_reward == stats_b.mean_reward
        _assert_state_equal(agent_a.state_dict(), agent_b.state_dict())


# ---------------------------------------------------------------------------
# 2. descriptor mode trains and resumes bit-exactly


class TestDescriptorTraining:
    def test_trainer_end_to_end(self):
        cfg = ci_scale_config(
            episodes=3, seed=4, max_steps=10, observation_mode="descriptor"
        )
        env = make_env(cfg)
        spec = env.observation_spec
        agent = build_agent_for_env(cfg, env)
        # The Q-network consumes the descriptor vector directly.
        assert agent.q_net.params()[0].shape[0] == spec.dim
        hist, _ = _train(cfg, env)
        assert len(hist.episodes) == 3
        assert hist.total_steps > 0

    def test_trainer_interrupt_resume_bit_exact(self, tmp_path):
        cfg = ci_scale_config(
            episodes=6,
            seed=3,
            max_steps=12,
            observation_mode="descriptor",
        )

        rt_a = RuntimeContext(tmp_path / "a", checkpoint_every=2)
        env, agent_a, trainer = _make_trainer(cfg)
        hist_a = RunLoop(rt_a, phase="t").run_episodes(trainer)
        env.close()
        state_a = agent_a.state_dict()

        guard = ShutdownGuard()

        def on_end(stats):
            if stats.episode == 2:
                guard.request_stop()

        rt_b = RuntimeContext(tmp_path / "b", checkpoint_every=2, guard=guard)
        env, _, trainer_b = _make_trainer(cfg, on_episode_end=on_end)
        with pytest.raises(RunInterrupted):
            RunLoop(rt_b, phase="t").run_episodes(trainer_b)
        env.close()
        meta = read_meta(rt_b.checkpoint_path("t"))
        assert not meta["complete"]
        # The checkpoint records the codec identity for resume checks.
        assert meta["observation"]["mode"] == "descriptor"

        rt_c = RuntimeContext(tmp_path / "b", checkpoint_every=2)
        env, agent_c, trainer_c = _make_trainer(cfg)
        hist_b = RunLoop(rt_c, phase="t").run_episodes(trainer_c)
        env.close()

        _assert_histories_equal(hist_a, hist_b)
        _assert_state_equal(agent_c.state_dict(), state_a)

    def test_vector_interrupt_resume_bit_exact(self, tmp_path):
        cfg = ci_scale_config(
            episodes=4, seed=5, max_steps=12, observation_mode="descriptor"
        )
        total, segment = 48, 24

        def make(ctx):
            venv = make_vector_env(cfg, n_envs=2, backend="sync")
            agent = build_agent(cfg, venv.state_dim, venv.n_actions)
            vt = VectorTrainer(
                venv,
                agent,
                learning_start=cfg.learning_start,
                target_update_steps=cfg.target_update_steps,
                train_interval=cfg.train_interval,
            )
            stats = RunLoop(ctx, phase="v").run_steps(vt, total)
            venv.close()
            return stats, agent

        rt_a = RuntimeContext(tmp_path / "a", checkpoint_every=segment)
        stats_a, agent_a = make(rt_a)
        state_a = agent_a.state_dict()

        class _StopAfterCheckpoint:
            def __init__(self, runtime):
                self._runtime = runtime

            @property
            def stop_requested(self):
                path = self._runtime.checkpoint_path("v")
                if not path.exists():
                    return False
                return read_meta(path).get("global_step", 0) >= segment

        rt_b = RuntimeContext(tmp_path / "b", checkpoint_every=segment)
        rt_b.guard = _StopAfterCheckpoint(rt_b)
        with pytest.raises(RunInterrupted):
            make(rt_b)

        rt_c = RuntimeContext(tmp_path / "b", checkpoint_every=segment)
        stats_b, agent_c = make(rt_c)
        assert stats_b.total_steps == stats_a.total_steps == total
        assert stats_b.best_score == stats_a.best_score
        assert stats_b.mean_reward == stats_a.mean_reward
        _assert_state_equal(agent_c.state_dict(), state_a)


# ---------------------------------------------------------------------------
# 3. resume refuses a codec swap


class TestCodecMismatch:
    def test_trainer_resume_rejects_other_codec(self, tmp_path):
        raw = ci_scale_config(episodes=6, seed=3, max_steps=12)
        guard = ShutdownGuard()

        def on_end(stats):
            if stats.episode == 2:
                guard.request_stop()

        rt = RuntimeContext(tmp_path, checkpoint_every=2, guard=guard)
        env, _, trainer = _make_trainer(raw, on_episode_end=on_end)
        with pytest.raises(RunInterrupted):
            RunLoop(rt, phase="t").run_episodes(trainer)
        env.close()
        assert read_meta(rt.checkpoint_path("t"))["observation"]["mode"] == (
            "raw"
        )

        desc = ci_scale_config(
            episodes=6, seed=3, max_steps=12, observation_mode="descriptor"
        )
        rt2 = RuntimeContext(tmp_path, checkpoint_every=2)
        env, _, trainer_b = _make_trainer(desc)
        with pytest.raises(CheckpointMismatchError, match="observation"):
            RunLoop(rt2, phase="t").run_episodes(trainer_b)
        env.close()

    def test_pre_pr7_checkpoint_still_resumes(self, tmp_path):
        # Checkpoints written before the codec layer carry no
        # "observation" meta key; resume must not reject them.
        from repro.runtime.loop import _check_observation

        spec = make_env(ci_scale_config(4)).observation_spec
        _check_observation({}, spec)
        _check_observation({"observation": None}, spec)
        _check_observation({"observation": spec.as_dict()}, spec)
        with pytest.raises(CheckpointMismatchError):
            _check_observation(
                {"observation": dict(spec.as_dict(), mode="descriptor")},
                spec,
            )
