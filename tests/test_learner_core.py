"""LearnerCore: crossing-count cadence math and bit-equality pins.

The core was extracted from the two historical trainers; these tests
hold the extraction to *bit* equality.  The cadence unit tests pin the
crossing-count arithmetic at its boundaries, and the pin tests replay
the exact pre-extraction inline loops (sequential and vectorized)
against the refactored trainers on seeded agents -- final Q-network,
target-network, and replay-side counters must match to the last bit.
"""

import numpy as np
import pytest

from repro.env.factory import make_vector_env
from repro.rl.learner import LearnerCore
from repro.rl.trainer import Trainer
from repro.rl.vector_trainer import VectorTrainer

from tests.test_rl_trainer import CountingEnv, tiny_agent


class _LearnInfo:
    loss = 0.25


class RecordingAgent:
    """Counts learn/sync calls in order; cadence tests only."""

    def __init__(self, can_learn=True):
        self._can_learn = can_learn
        self.calls = []

    def can_learn(self):
        return self._can_learn

    def learn(self):
        self.calls.append("learn")
        return _LearnInfo()

    def sync_target(self):
        self.calls.append("sync")


class TestAdvanceCadence:
    def test_single_step_matches_modulo_check(self):
        # For +1 moves the crossing count reduces to the historical
        # ``new_step % interval == 0`` check, for every interval.
        for interval in (1, 2, 3, 7):
            agent = RecordingAgent()
            core = LearnerCore(
                agent, train_interval=interval, target_update_steps=10**9
            )
            for step in range(1, 22):
                n_before = len(agent.calls)
                core.advance(step - 1, step)
                learned = len(agent.calls) - n_before
                assert learned == (1 if step % interval == 0 else 0)

    def test_bulk_move_crosses_every_multiple(self):
        agent = RecordingAgent()
        core = LearnerCore(
            agent, train_interval=3, target_update_steps=10**9
        )
        infos = core.advance(0, 10)  # crosses 3, 6, 9
        assert len(infos) == 3
        assert agent.calls == ["learn"] * 3

    def test_no_double_count_across_calls(self):
        # Two advances over [0,4] then [4,8] owe exactly the update
        # counts one advance over [0,8] owes (ordering differs: learns
        # batch before syncs within each advance).
        split, whole = RecordingAgent(), RecordingAgent()
        for prev, new in ((0, 4), (4, 8)):
            LearnerCore(
                split, train_interval=4, target_update_steps=2
            ).advance(prev, new)
        LearnerCore(
            whole, train_interval=4, target_update_steps=2
        ).advance(0, 8)
        assert sorted(split.calls) == sorted(whole.calls)

    def test_learning_start_gates_learns_not_syncs(self):
        agent = RecordingAgent()
        core = LearnerCore(
            agent,
            learning_start=100,
            train_interval=1,
            target_update_steps=5,
        )
        core.advance(0, 10)
        assert agent.calls == ["sync"] * 2
        core.advance(10, 100)
        assert "learn" in agent.calls

    def test_can_learn_gate(self):
        agent = RecordingAgent(can_learn=False)
        LearnerCore(agent, train_interval=1).advance(0, 5)
        assert "learn" not in agent.calls

    def test_learns_run_before_syncs(self):
        agent = RecordingAgent()
        LearnerCore(
            agent, train_interval=2, target_update_steps=4
        ).advance(0, 4)
        assert agent.calls == ["learn", "learn", "sync"]

    def test_epsilon_delegates_to_policy(self):
        agent = tiny_agent()
        core = LearnerCore(agent)
        for step in (0, 3, 50):
            assert core.epsilon(step) == agent.policy.epsilon(step)


def _reference_sequential_run(
    env,
    agent,
    *,
    episodes,
    max_steps,
    learning_start,
    target_update_steps,
    train_interval,
):
    """The pre-extraction Trainer inner loop, verbatim cadence."""
    global_step = 0
    for _ep in range(episodes):
        state = env.reset()
        for _t in range(max_steps):
            action, _q = agent.act(state, global_step)
            next_state, reward, done, _info = env.step(action)
            agent.remember(state, action, reward, next_state, done)
            state = next_state
            global_step += 1
            if (
                global_step >= learning_start
                and agent.can_learn()
                and global_step % train_interval == 0
            ):
                agent.learn()
            if global_step % target_update_steps == 0:
                agent.sync_target()
            if done:
                break


def _reference_vector_run(
    venv,
    agent,
    *,
    total_steps,
    learning_start,
    target_update_steps,
    train_interval,
):
    """The pre-extraction VectorTrainer loop, verbatim cadence."""
    states = venv.reset()
    global_step = 0
    n = venv.n_envs
    while global_step < total_steps:
        q = agent.predict_q(states)
        greedy = np.argmax(q, axis=1)
        policy = agent.policy
        eps = policy.epsilon(global_step)
        random_mask = policy.rng.uniform(size=n) < eps
        random_actions = policy.rng.integers(policy.n_actions, size=n)
        actions = np.where(random_mask, random_actions, greedy)
        next_states, rewards, dones, infos = venv.step(actions)
        for i in range(n):
            true_next = (
                infos[i]["terminal_state"] if dones[i] else next_states[i]
            )
            agent.remember(
                states[i],
                int(actions[i]),
                float(rewards[i]),
                true_next,
                bool(dones[i]),
            )
        states = next_states
        prev_step = global_step
        global_step += n
        if global_step >= learning_start and agent.can_learn():
            updates = (
                global_step // train_interval
                - prev_step // train_interval
            )
            for _ in range(updates):
                agent.learn()
        syncs = (
            global_step // target_update_steps
            - prev_step // target_update_steps
        )
        for _ in range(syncs):
            agent.sync_target()


def _assert_agents_bit_equal(a, b):
    assert a.learn_steps == b.learn_steps and a.learn_steps > 0
    assert a.target_syncs == b.target_syncs and a.target_syncs > 0
    for pa, pb in zip(a.q_net.params(), b.q_net.params()):
        np.testing.assert_array_equal(pa, pb)
    for pa, pb in zip(a.target_net.params(), b.target_net.params()):
        np.testing.assert_array_equal(pa, pb)


# Deliberately awkward cadences: off-phase interval, target period not a
# multiple of the episode length, learning starting mid-episode.
CADENCE = dict(learning_start=13, target_update_steps=7, train_interval=3)


class TestBitEqualityPins:
    def test_trainer_matches_pre_extraction_loop(self):
        agent_new = tiny_agent()
        Trainer(
            CountingEnv(),
            agent_new,
            episodes=6,
            max_steps_per_episode=10,
            **CADENCE,
        ).run()

        agent_ref = tiny_agent()
        _reference_sequential_run(
            CountingEnv(),
            agent_ref,
            episodes=6,
            max_steps=10,
            **CADENCE,
        )
        _assert_agents_bit_equal(agent_new, agent_ref)

    @pytest.mark.parametrize("n_envs", [1, 3])
    def test_vector_trainer_matches_pre_extraction_loop(self, n_envs):
        def fns():
            return [
                (lambda h=h: CountingEnv(horizon=h))
                for h in range(9, 9 + n_envs)
            ]

        agent_new = tiny_agent()
        venv = make_vector_env(env_fns=fns(), backend="sync")
        try:
            VectorTrainer(agent=agent_new, venv=venv, **CADENCE).run(
                total_steps=60
            )
        finally:
            venv.close()

        agent_ref = tiny_agent()
        venv = make_vector_env(env_fns=fns(), backend="sync")
        try:
            _reference_vector_run(
                venv, agent_ref, total_steps=60, **CADENCE
            )
        finally:
            venv.close()
        _assert_agents_bit_equal(agent_new, agent_ref)
