"""Bitwise batch-vs-singles pins for every registered pose scorer.

The pose-major ``score_batch`` paths promise entries *bitwise equal* to
sequential single-pose ``score`` calls — not merely close.  These pins
exercise each scorer across the regimes that take different code paths:

- *calm* poses near the crystal pose (pure interpolation / cached-list
  fast paths);
- *clash* poses with a ligand atom placed exactly on a receptor atom
  (``MIN_DISTANCE`` clamps, field near-field pair corrections);
- *out-of-box* poses far outside any grid/field box (exact-column
  fallbacks, grid boundary clamps);
- a *mixed* batch concatenating all three.

Also pinned: empty-batch fast paths (no lazy structure built), batch
shape validation, eager ``GridScorer`` dtype validation, per-pose
``near_fraction`` / histogram telemetry in field batch mode, and the
cross-ligand ``score_field_group`` / ``score_pose_group`` front doors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.metadock.library import generate_library
from repro.scoring.field import (
    NEAR_FRACTION_METRIC,
    FieldMaps,
    FieldScorer,
    score_field_group,
)
from repro.scoring.scorers import (
    ExactScorer,
    GridScorer,
    SCORING_METHODS,
    make_scorer,
    score_pose_group,
)
from repro.telemetry.metrics import MetricsRegistry


def _pose_batches(built, rng):
    """(calm, clash, oob, mixed) pose batches around the crystal pose."""
    base = built.ligand_crystal.coords
    calm = base[None] + rng.normal(scale=0.3, size=(6,) + base.shape)
    clash = np.repeat(base[None], 3, axis=0)
    for j in range(3):
        # Ligand atom 0 exactly on a receptor atom: r == 0 before the
        # MIN_DISTANCE clamp, and inside the field clash radius.
        clash[j, 0] = built.receptor.coords[j * 7]
    oob = base[None] + np.array(
        [[200.0, 0.0, 0.0], [0.0, -250.0, 0.0], [0.0, 0.0, 300.0]]
    ).reshape(3, 1, 3)
    mixed = np.concatenate([calm, clash, oob], axis=0)
    return calm, clash, oob, mixed


@pytest.mark.parametrize("method", SCORING_METHODS)
def test_batch_bitwise_matches_singles(small_complex, rng, method):
    rec = small_complex.receptor
    lig = small_complex.ligand_crystal
    batches = _pose_batches(small_complex, rng)
    batch_scorer = make_scorer(method, rec, lig)
    single_scorer = make_scorer(method, rec, lig)
    for cb in batches:
        got = batch_scorer.score_batch(cb)
        ref = np.array([single_scorer.score(p) for p in cb])
        assert np.array_equal(got, ref), method
    # Re-scoring the mixed batch on the now-warm scorer (Verlet cache,
    # built grid/maps) must reproduce the same floats.
    mixed = batches[-1]
    first = batch_scorer.score_batch(mixed)
    assert np.array_equal(batch_scorer.score_batch(mixed), first)


@pytest.mark.parametrize("method", SCORING_METHODS)
def test_empty_batch_short_circuits(small_complex, method):
    lig = small_complex.ligand_crystal
    scorer = make_scorer(method, small_complex.receptor, lig)
    out = scorer.score_batch(np.empty((0, lig.n_atoms, 3)))
    assert out.shape == (0,)
    if method == "grid":
        # k == 0 must return before triggering the lazy grid build.
        assert scorer._grid is None


@pytest.mark.parametrize("method", SCORING_METHODS)
def test_batch_shape_validated(small_complex, method):
    lig = small_complex.ligand_crystal
    scorer = make_scorer(method, small_complex.receptor, lig)
    with pytest.raises(ValueError, match="coords_batch"):
        scorer.score_batch(np.zeros((2, lig.n_atoms + 1, 3)))
    with pytest.raises(ValueError, match="coords_batch"):
        scorer.score_batch(np.zeros((lig.n_atoms, 3)))


def test_grid_dtype_validated_eagerly(small_complex):
    with pytest.raises(ValueError, match="dtype"):
        GridScorer(
            small_complex.receptor,
            small_complex.ligand_crystal,
            dtype="float16",
        )


def test_field_batch_near_fraction_and_histogram(small_complex, rng):
    """Batch mode observes one histogram value per pose and leaves
    ``near_fraction`` at the last pose's value — as sequential calls."""
    rec = small_complex.receptor
    lig = small_complex.ligand_crystal
    _, _, _, mixed = _pose_batches(small_complex, rng)

    batch_scorer = FieldScorer(rec, lig)
    batch_scorer.metrics = MetricsRegistry()
    got = batch_scorer.score_batch(mixed)

    single_scorer = FieldScorer(rec, lig)
    single_scorer.metrics = MetricsRegistry()
    ref = np.array([single_scorer.score(p) for p in mixed])

    assert np.array_equal(got, ref)
    assert batch_scorer.near_fraction == single_scorer.near_fraction
    h_batch = batch_scorer.metrics.get(NEAR_FRACTION_METRIC)
    h_single = single_scorer.metrics.get(NEAR_FRACTION_METRIC)
    assert h_batch.count == mixed.shape[0]
    assert h_batch.count == h_single.count
    assert h_batch.mean == h_single.mean
    assert h_batch.max == h_single.max
    # Clash poses force the exact path for at least one atom.
    assert h_batch.max > 0.0


def test_score_field_group_heterogeneous_shared_maps(small_complex, rng):
    """Different ligands sharing one FieldMaps fuse into one kernel and
    still reproduce each scorer's single-pose floats."""
    rec = small_complex.receptor
    library = generate_library(small_complex.config, 3, seed=7)
    maps = FieldMaps(rec)
    scorers = [
        FieldScorer(rec, e.ligand, cells=maps) for e in library
    ] + [FieldScorer(rec, small_complex.ligand_crystal, cells=maps)]
    entries = []
    for sc in scorers:
        pose = sc.ligand.coords + rng.normal(
            scale=0.3, size=sc.ligand.coords.shape
        )
        entries.append((sc, pose))
    got = score_field_group(entries)
    ref = np.array(
        [
            FieldScorer(rec, sc.ligand, cells=maps).score(pose)
            for sc, pose in entries
        ]
    )
    assert np.array_equal(got, ref)


def test_score_field_group_rejects_non_field_scorer(small_complex):
    lig = small_complex.ligand_crystal
    exact = ExactScorer(small_complex.receptor, lig)
    with pytest.raises(TypeError, match="FieldScorer"):
        score_field_group([(exact, lig.coords)])


def test_score_pose_group_mixed_scorers(small_complex, rng):
    """The rollout front door: field entries fuse, everything else goes
    through its own ``score()`` — each entry bitwise either way."""
    rec = small_complex.receptor
    lig = small_complex.ligand_crystal
    maps = FieldMaps(rec)
    scorers = [
        make_scorer("exact", rec, lig),
        FieldScorer(rec, lig, cells=maps),
        make_scorer("incremental", rec, lig),
        FieldScorer(rec, lig, cells=maps),
        make_scorer("cutoff", rec, lig),
    ]
    entries = [
        (
            sc,
            lig.coords
            + rng.normal(scale=0.3, size=lig.coords.shape),
        )
        for sc in scorers
    ]
    got = score_pose_group(entries)
    ref = np.array([sc.score(pose) for sc, pose in entries])
    assert np.array_equal(got, ref)
    assert got.shape == (len(entries),)


def test_score_pose_group_empty():
    assert score_pose_group([]).shape == (0,)
