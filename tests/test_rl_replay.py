"""Replay memories: ring semantics, sampling, sum-tree priorities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rl.prioritized_replay import PrioritizedReplayMemory, SumTree
from repro.rl.replay import ReplayMemory


def fill(mem: ReplayMemory, n: int, state_dim: int = 4) -> None:
    for k in range(n):
        s = np.full(state_dim, float(k))
        mem.push(s, k % 3, float(k), s + 1, k % 5 == 0)


class TestReplayMemory:
    def test_grows_then_saturates(self):
        mem = ReplayMemory(10, 4, seed=0)
        fill(mem, 7)
        assert len(mem) == 7 and not mem.is_full
        fill(mem, 10)
        assert len(mem) == 10 and mem.is_full

    def test_ring_overwrites_oldest(self):
        mem = ReplayMemory(3, 2, seed=0)
        for k in range(5):
            mem.push(np.full(2, k), 0, float(k), np.zeros(2), False)
        stored = {mem[i].reward for i in range(3)}
        assert stored == {2.0, 3.0, 4.0}

    def test_sample_shapes(self):
        mem = ReplayMemory(50, 4, seed=0)
        fill(mem, 20)
        batch = mem.sample(8)
        assert batch.states.shape == (8, 4)
        assert batch.next_states.shape == (8, 4)
        assert batch.actions.shape == (8,)
        assert batch.rewards.shape == (8,)
        assert batch.terminals.dtype == bool
        assert (batch.weights == 1.0).all()
        assert len(batch) == 8

    def test_sample_only_valid_slots(self):
        mem = ReplayMemory(100, 4, seed=0)
        fill(mem, 5)
        batch = mem.sample(64)
        assert (batch.indices < 5).all()

    def test_sample_empty_rejected(self):
        with pytest.raises(ValueError):
            ReplayMemory(10, 2).sample(1)

    def test_getitem_roundtrip(self):
        mem = ReplayMemory(10, 3, seed=0)
        s = np.array([1.0, 2.0, 3.0])
        mem.push(s, 2, 0.5, s * 2, True)
        t = mem[0]
        np.testing.assert_allclose(t.state, s, atol=1e-6)
        assert t.action == 2 and t.reward == 0.5 and t.terminal

    def test_getitem_bounds(self):
        mem = ReplayMemory(10, 2)
        with pytest.raises(IndexError):
            mem[0]

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ReplayMemory(0, 4)
        with pytest.raises(ValueError):
            ReplayMemory(4, 0)

    def test_float32_storage_saves_memory(self):
        mem = ReplayMemory(100, 10)
        # states + next_states at float32: 100*10*4*2 bytes
        assert mem.nbytes() < 100 * 10 * 8 * 2 + 100 * 32

    def test_deterministic_sampling(self):
        a = ReplayMemory(20, 2, seed=42)
        b = ReplayMemory(20, 2, seed=42)
        fill(a, 10, 2)
        fill(b, 10, 2)
        np.testing.assert_array_equal(a.sample(5).indices, b.sample(5).indices)


class TestSumTree:
    def test_total_tracks_updates(self):
        t = SumTree(8)
        t.update(0, 1.0)
        t.update(3, 2.5)
        assert t.total == pytest.approx(3.5)
        t.update(0, 0.5)
        assert t.total == pytest.approx(3.0)

    def test_get(self):
        t = SumTree(4)
        t.update(2, 7.0)
        assert t.get(2) == 7.0
        assert t.get(1) == 0.0

    def test_find_respects_proportions(self):
        t = SumTree(4)
        t.update(0, 1.0)
        t.update(1, 3.0)
        assert t.find(0.5) == 0
        assert t.find(1.5) == 1
        assert t.find(3.9) == 1

    def test_bounds_checked(self):
        t = SumTree(4)
        with pytest.raises(IndexError):
            t.update(4, 1.0)
        with pytest.raises(ValueError):
            t.update(0, -1.0)

    def test_max_priority(self):
        t = SumTree(4)
        assert t.max_priority() == 0.0
        t.update(1, 9.0)
        assert t.max_priority() == 9.0

    @given(
        st.lists(
            st.floats(0.01, 100.0), min_size=1, max_size=16
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_find_always_lands_on_positive_leaf(self, priorities):
        t = SumTree(len(priorities))
        for i, p in enumerate(priorities):
            t.update(i, p)
        rng = np.random.default_rng(0)
        for _ in range(20):
            prefix = rng.uniform(0, t.total * 0.999999)
            leaf = t.find(prefix)
            assert 0 <= leaf < len(priorities)
            assert t.get(leaf) > 0.0

    @given(st.lists(st.floats(0.0, 10.0), min_size=2, max_size=12))
    @settings(max_examples=30, deadline=None)
    def test_total_equals_leaf_sum(self, priorities):
        t = SumTree(len(priorities))
        for i, p in enumerate(priorities):
            t.update(i, p)
        assert t.total == pytest.approx(sum(priorities))


class TestPrioritizedReplay:
    def test_new_items_sampled_at_least_once_priority(self):
        mem = PrioritizedReplayMemory(16, 2, seed=0)
        fill(mem, 4, 2)
        # All initial priorities equal (max seeding).
        pris = [mem._tree.get(i) for i in range(4)]
        assert len(set(pris)) == 1 and pris[0] > 0

    def test_update_priorities_biases_sampling(self):
        mem = PrioritizedReplayMemory(8, 2, seed=1, alpha=1.0)
        fill(mem, 8, 2)
        # Make slot 3 dominate.
        mem.update_priorities(np.arange(8), np.full(8, 1e-6))
        mem.update_priorities(np.array([3]), np.array([1000.0]))
        counts = np.zeros(8)
        for _ in range(30):
            batch = mem.sample(4)
            for i in batch.indices:
                counts[i] += 1
        assert counts[3] > 0.8 * counts.sum()

    def test_weights_normalized(self):
        mem = PrioritizedReplayMemory(16, 2, seed=2)
        fill(mem, 10, 2)
        batch = mem.sample(6)
        assert batch.weights.max() == pytest.approx(1.0)
        assert (batch.weights > 0).all()

    def test_beta_anneals(self):
        mem = PrioritizedReplayMemory(
            16, 2, seed=3, beta=0.4, beta_anneal_steps=10
        )
        fill(mem, 8, 2)
        assert mem.beta == pytest.approx(0.4)
        mem.sample(10)
        assert mem.beta == pytest.approx(1.0)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            PrioritizedReplayMemory(8, 2, alpha=1.5)

    def test_sample_empty_rejected(self):
        with pytest.raises(ValueError):
            PrioritizedReplayMemory(8, 2).sample(1)

    def test_indices_valid_after_wrap(self):
        mem = PrioritizedReplayMemory(4, 2, seed=4)
        fill(mem, 10, 2)
        batch = mem.sample(8)
        assert (batch.indices < 4).all()
