"""Exploration schedules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rl.schedules import ConstantSchedule, EpsilonGreedy, LinearSchedule


class TestLinearSchedule:
    def test_paper_parameters(self):
        # Table 1: 1.0 -> 0.05 at 4.5e-5 per step.
        sched = LinearSchedule(1.0, 0.05, 4.5e-5)
        assert sched(0) == 1.0
        assert sched(10000) == pytest.approx(1.0 - 0.45)
        assert sched(1000000) == 0.05

    def test_saturation_step(self):
        sched = LinearSchedule(1.0, 0.05, 4.5e-5)
        n = sched.steps_to_final()
        assert n == pytest.approx(0.95 / 4.5e-5)
        assert sched(int(n) + 1) == 0.05

    def test_zero_decay_constant(self):
        sched = LinearSchedule(0.3, 0.05, 0.0)
        assert sched(10**9) == 0.3
        assert sched.steps_to_final() == float("inf")

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError):
            LinearSchedule(1.0, 0.0, 0.1)(-1)

    def test_negative_decay_rejected(self):
        with pytest.raises(ValueError):
            LinearSchedule(1.0, 0.0, -0.1)

    @given(st.integers(0, 10**6), st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_monotone_nonincreasing(self, a, b):
        sched = LinearSchedule(1.0, 0.05, 4.5e-5)
        lo, hi = sorted((a, b))
        assert sched(hi) <= sched(lo)

    @given(st.integers(0, 10**7))
    @settings(max_examples=30, deadline=None)
    def test_always_in_range(self, step):
        sched = LinearSchedule(1.0, 0.05, 4.5e-5)
        assert 0.05 <= sched(step) <= 1.0


class TestConstantSchedule:
    def test_constant(self):
        s = ConstantSchedule(0.1)
        assert s(0) == s(10**9) == 0.1


class TestEpsilonGreedy:
    def _policy(self, exploration_steps=0, seed=0):
        return EpsilonGreedy(
            LinearSchedule(1.0, 0.0, 0.01),
            n_actions=4,
            exploration_steps=exploration_steps,
            rng=seed,
        )

    def test_forced_exploration_window(self):
        pol = self._policy(exploration_steps=100)
        assert pol.epsilon(0) == 1.0
        assert pol.epsilon(99) == 1.0
        assert pol.epsilon(150) == pytest.approx(0.5)

    def test_greedy_when_epsilon_zero(self):
        pol = self._policy()
        q = np.array([0.0, 5.0, 1.0, -2.0])
        # step far beyond decay: epsilon = 0 -> always argmax
        for _ in range(20):
            assert pol.select(q, 10**6) == 1

    def test_random_when_epsilon_one(self):
        pol = self._policy(exploration_steps=10**9)
        actions = {pol.select(np.zeros(4), 0) for _ in range(100)}
        assert actions == {0, 1, 2, 3}

    def test_qvalue_shape_checked(self):
        pol = self._policy()
        with pytest.raises(ValueError):
            pol.select(np.zeros(3), 10**6)

    def test_invalid_action_count(self):
        with pytest.raises(ValueError):
            EpsilonGreedy(ConstantSchedule(0.1), 0)

    def test_deterministic_given_seed(self):
        a = self._policy(seed=5)
        b = self._policy(seed=5)
        q = np.array([1.0, 0.0, 0.0, 2.0])
        seq_a = [a.select(q, t) for t in range(20)]
        seq_b = [b.select(q, t) for t in range(20)]
        assert seq_a == seq_b
