"""Topology: bond perception, components, rings, rotatable bonds."""

import numpy as np
import pytest

from repro.chem.topology import (
    adjacency,
    bond_vector_state,
    bonds_from_distance,
    connected_components,
    ring_bonds,
    rotatable_bonds,
    torsion_partition,
)


def butane_like():
    """C4 chain with H caps: C0-C1-C2-C3, H on C0 and C3."""
    symbols = ["C", "C", "C", "C", "H", "H"]
    coords = np.array(
        [
            [0.0, 0.0, 0.0],
            [1.5, 0.0, 0.0],
            [3.0, 0.0, 0.0],
            [4.5, 0.0, 0.0],
            [-1.0, 0.3, 0.0],
            [5.5, 0.3, 0.0],
        ]
    )
    bonds = np.array([[0, 1], [1, 2], [2, 3], [0, 4], [3, 5]])
    return symbols, coords, bonds


def cyclobutane_like():
    """4-carbon ring."""
    symbols = ["C"] * 4
    coords = np.array(
        [[0.0, 0.0, 0.0], [1.5, 0.0, 0.0], [1.5, 1.5, 0.0], [0.0, 1.5, 0.0]]
    )
    bonds = np.array([[0, 1], [1, 2], [2, 3], [0, 3]])
    return symbols, coords, bonds


class TestBondsFromDistance:
    def test_detects_chain(self):
        symbols, coords, expected = butane_like()
        bonds = bonds_from_distance(symbols, coords)
        got = {tuple(b) for b in bonds}
        assert {(0, 1), (1, 2), (2, 3)} <= got

    def test_far_atoms_unbonded(self):
        bonds = bonds_from_distance(["C", "C"], [[0, 0, 0], [10, 0, 0]])
        assert bonds.shape == (0, 2)

    def test_single_atom(self):
        assert bonds_from_distance(["C"], [[0, 0, 0]]).shape == (0, 2)

    def test_indices_ordered(self):
        symbols, coords, _ = butane_like()
        bonds = bonds_from_distance(symbols, coords)
        assert (bonds[:, 0] < bonds[:, 1]).all()

    def test_max_coordination_prunes_longest(self):
        # Central atom with 5 close neighbors; cap at 4.
        symbols = ["C"] * 6
        coords = np.array(
            [
                [0, 0, 0],
                [1.4, 0, 0],
                [-1.4, 0, 0],
                [0, 1.4, 0],
                [0, -1.4, 0],
                [0, 0, 1.6],  # longest -> pruned first
            ],
            dtype=float,
        )
        bonds = bonds_from_distance(symbols, coords, max_coordination=4)
        degree = np.zeros(6, int)
        for i, j in bonds:
            degree[i] += 1
            degree[j] += 1
        assert degree[0] <= 4
        assert (5 not in bonds[:, 0]) and (5 not in bonds[:, 1])


class TestComponents:
    def test_single_component_chain(self):
        symbols, coords, bonds = butane_like()
        comps = connected_components(len(symbols), bonds)
        assert len(comps) == 1
        assert comps[0] == list(range(6))

    def test_disconnected(self):
        comps = connected_components(4, np.array([[0, 1]]))
        assert len(comps) == 3

    def test_no_bonds(self):
        comps = connected_components(3, np.empty((0, 2), dtype=int))
        assert comps == [[0], [1], [2]]

    def test_adjacency_symmetric(self):
        _s, _c, bonds = butane_like()
        adj = adjacency(6, bonds)
        for i, j in bonds:
            assert j in adj[i] and i in adj[j]


class TestRingBonds:
    def test_chain_has_no_rings(self):
        symbols, coords, bonds = butane_like()
        assert ring_bonds(len(symbols), bonds) == set()

    def test_cycle_fully_ring(self):
        symbols, coords, bonds = cyclobutane_like()
        rings = ring_bonds(4, bonds)
        assert rings == {(0, 1), (1, 2), (2, 3), (0, 3)}

    def test_ring_with_tail(self):
        # ring 0-1-2-0 plus tail 2-3
        bonds = np.array([[0, 1], [1, 2], [0, 2], [2, 3]])
        rings = ring_bonds(4, bonds)
        assert (2, 3) not in rings
        assert {(0, 1), (1, 2), (0, 2)} == rings

    def test_two_separate_rings(self):
        bonds = np.array(
            [[0, 1], [1, 2], [0, 2], [3, 4], [4, 5], [3, 5], [2, 3]]
        )
        rings = ring_bonds(6, bonds)
        assert (2, 3) not in rings
        assert len(rings) == 6


class TestRotatableBonds:
    def test_chain_central_bonds_rotatable(self):
        symbols, coords, bonds = butane_like()
        rb = rotatable_bonds(symbols, coords, bonds)
        assert (1, 2) in rb
        # Terminal C-C bonds qualify too: both carbons have another heavy
        # neighbor?  C0 has only H besides C1 -> (0,1) not rotatable.
        assert (0, 1) not in rb

    def test_ring_bonds_excluded(self):
        symbols, coords, bonds = cyclobutane_like()
        assert rotatable_bonds(symbols, coords, bonds) == []

    def test_bond_to_hydrogen_excluded(self):
        symbols, coords, bonds = butane_like()
        rb = rotatable_bonds(symbols, coords, bonds)
        assert all(symbols[i] != "H" and symbols[j] != "H" for i, j in rb)


class TestTorsionPartition:
    def test_chain_partition(self):
        symbols, coords, bonds = butane_like()
        side = torsion_partition(6, bonds, (1, 2))
        assert set(side) == {2, 3, 5}

    def test_direction_matters(self):
        symbols, coords, bonds = butane_like()
        side = torsion_partition(6, bonds, (2, 1))
        assert set(side) == {0, 1, 4}

    def test_ring_bond_rejected(self):
        _s, _c, bonds = cyclobutane_like()
        with pytest.raises(ValueError):
            torsion_partition(4, bonds, (0, 1))


class TestBondVectorState:
    def test_length(self):
        _s, coords, bonds = butane_like()
        vec = bond_vector_state(coords, bonds)
        assert vec.shape == (3 * len(bonds),)

    def test_values(self):
        coords = np.array([[0.0, 0, 0], [1.5, 0, 0]])
        vec = bond_vector_state(coords, np.array([[0, 1]]))
        np.testing.assert_allclose(vec, [1.5, 0.0, 0.0])

    def test_empty_bonds(self):
        assert bond_vector_state(np.zeros((3, 3)), np.empty((0, 2))).size == 0

    def test_translation_invariant(self):
        _s, coords, bonds = butane_like()
        a = bond_vector_state(coords, bonds)
        b = bond_vector_state(coords + 5.0, bonds)
        np.testing.assert_allclose(a, b)
