"""ActionRepeat wrapper (the frame-skip analogue)."""

import numpy as np
import pytest

from repro.env.wrappers import ActionRepeat

from tests.test_env_wrappers import FakeEnv


class ScoreDeltaEnv(FakeEnv):
    """FakeEnv variant reporting score_delta like DockingEnv does."""

    def step(self, action):
        state, reward, done, info = super().step(action)
        delta = 1.0 if action == 0 else -1.0
        info["score_delta"] = delta
        info["score"] = float(self.t) * delta
        return state, reward, done, info


class TestActionRepeat:
    def test_advances_repeat_steps(self):
        inner = FakeEnv()
        env = ActionRepeat(inner, 4)
        env.reset()
        env.step(0)
        assert inner.t == 4

    def test_repeat_one_is_identity(self):
        inner = FakeEnv()
        env = ActionRepeat(inner, 1)
        env.reset()
        env.step(0)
        assert inner.t == 1

    def test_stops_early_on_done(self):
        inner = FakeEnv(horizon=2)
        env = ActionRepeat(inner, 10)
        env.reset()
        _s, _r, done, _i = env.step(0)
        assert done
        assert inner.t == 2

    def test_reward_is_sign_of_total_delta(self):
        env = ActionRepeat(ScoreDeltaEnv(), 3)
        env.reset()
        _s, r, _d, info = env.step(0)
        assert r == 1.0
        assert info["score_delta"] == pytest.approx(3.0)

    def test_invalid_repeat(self):
        with pytest.raises(ValueError):
            ActionRepeat(FakeEnv(), 0)

    def test_on_real_docking_env(self, engine):
        from repro.env.docking_env import DockingEnv

        env = ActionRepeat(DockingEnv(engine), 3)
        s = env.reset()
        s2, r, done, info = env.step(5)
        assert r in (-1.0, 0.0, 1.0)
        assert not np.array_equal(s, s2)
        # Three repeats of a shift move the ligand 3 steps.
        assert env.env.episode_steps == 3

    def test_coarser_steps_bigger_deltas(self, small_complex):
        from repro.env.docking_env import DockingEnv
        from repro.metadock.engine import MetadockEngine

        fine = DockingEnv(MetadockEngine(small_complex, shift_length=0.5))
        coarse = ActionRepeat(
            DockingEnv(MetadockEngine(small_complex, shift_length=0.5)), 4
        )
        fine.reset()
        coarse.reset()
        d_fine = abs(fine.step(5)[3]["score_delta"])
        d_coarse = abs(coarse.step(5)[3]["score_delta"])
        assert d_coarse > d_fine
