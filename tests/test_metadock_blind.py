"""Blind docking over surface spots."""

import numpy as np
import pytest

from repro.metadock.blind import blind_dock


class TestBlindDock:
    @pytest.fixture(scope="class")
    def result(self, small_complex):
        return blind_dock(
            small_complex,
            n_spots=8,
            budget_per_spot=100,
            seed=0,
            n_workers=1,
        )

    def test_all_spots_reported(self, result):
        assert len(result.spots) == 8
        assert result.total_evaluations == sum(
            r.evaluations for r in result.spots
        )

    def test_ranked_descending(self, result):
        scores = [r.best_score for r in result.spots]
        assert scores == sorted(scores, reverse=True)
        assert result.best.best_score == scores[0]

    def test_finds_the_pocket(self, result, small_complex):
        # The winning spot's pose must be near the true pocket center --
        # blind docking's success criterion.
        assert result.best.pocket_distance < 6.0

    def test_winner_beats_most_spots_clearly(self, result):
        scores = [r.best_score for r in result.spots]
        assert scores[0] > np.median(scores)

    def test_summary_table(self, result):
        out = result.summary()
        assert "Blind docking" in out
        assert "dist to pocket" in out

    def test_deterministic_across_worker_counts(self, small_complex):
        serial = blind_dock(
            small_complex, n_spots=4, budget_per_spot=60, seed=3, n_workers=1
        )
        parallel = blind_dock(
            small_complex, n_spots=4, budget_per_spot=60, seed=3, n_workers=2
        )
        assert [r.spot_index for r in serial.spots] == [
            r.spot_index for r in parallel.spots
        ]
        np.testing.assert_allclose(
            [r.best_score for r in serial.spots],
            [r.best_score for r in parallel.spots],
        )

    def test_unknown_strategy_rejected(self, small_complex):
        with pytest.raises(ValueError):
            blind_dock(small_complex, strategy="quantum")

    def test_poses_rescoreable(self, result, small_complex):
        from repro.metadock.engine import MetadockEngine

        engine = MetadockEngine(small_complex)
        best = result.best
        assert engine.score_pose(best.best_pose) == pytest.approx(
            best.best_score, rel=1e-9
        )
