"""MetadockEngine: action semantics, state vectors, scoring, caching."""

import numpy as np
import pytest

from repro.metadock.engine import MetadockEngine
from repro.metadock.pose import Pose
from repro.scoring.composite import interaction_score


class TestActions:
    def test_action_count_rigid(self, engine):
        assert engine.n_actions == 12
        assert len(engine.action_labels()) == 12

    def test_action_count_flexible(self, flex_engine):
        assert flex_engine.n_actions == 16
        assert flex_engine.action_labels()[-1] == "-twist-1"

    def test_out_of_range_rejected(self, engine):
        with pytest.raises(IndexError):
            engine.apply_action(12)
        with pytest.raises(IndexError):
            engine.apply_action(-1)

    def test_shift_moves_centroid_by_step(self, engine):
        engine.reset()
        before = engine.ligand_coords().mean(axis=0)
        engine.apply_action(0)  # +shift-x
        after = engine.ligand_coords().mean(axis=0)
        np.testing.assert_allclose(
            after - before, [engine.shift_length, 0, 0], atol=1e-12
        )

    def test_opposite_shifts_cancel(self, engine):
        engine.reset()
        start = engine.ligand_coords().copy()
        engine.apply_action(2)  # +y
        engine.apply_action(3)  # -y
        np.testing.assert_allclose(engine.ligand_coords(), start, atol=1e-9)

    def test_rotation_keeps_centroid(self, engine):
        engine.reset()
        before = engine.ligand_coords().mean(axis=0)
        engine.apply_action(6)  # +rot-x
        after = engine.ligand_coords().mean(axis=0)
        np.testing.assert_allclose(after, before, atol=1e-9)

    def test_opposite_rotations_cancel(self, engine):
        engine.reset()
        start = engine.ligand_coords().copy()
        engine.apply_action(8)
        engine.apply_action(9)
        np.testing.assert_allclose(engine.ligand_coords(), start, atol=1e-9)

    def test_torsion_action_changes_internal_geometry(self, flex_engine):
        flex_engine.reset()
        before = flex_engine.ligand_coords().copy()
        flex_engine.apply_action(12)  # +twist-0
        after = flex_engine.ligand_coords()
        # centroid preserved (re-centered template) but shape changed
        np.testing.assert_allclose(
            after.mean(axis=0), before.mean(axis=0), atol=1e-9
        )
        assert not np.allclose(after, before)

    def test_too_many_torsions_rejected(self, small_complex):
        with pytest.raises(ValueError):
            MetadockEngine(small_complex, n_torsions=50)


class TestStateAndScore:
    def test_reset_restores_initial(self, engine):
        obs0 = engine.reset()
        engine.apply_action(0)
        engine.apply_action(7)
        obs1 = engine.reset()
        np.testing.assert_allclose(obs1.state, obs0.state)
        assert obs1.score == pytest.approx(obs0.score)

    def test_initial_matches_built_complex(self, engine, small_complex):
        engine.reset()
        np.testing.assert_allclose(
            engine.ligand_coords(), small_complex.ligand_initial.coords,
            atol=1e-9,
        )

    def test_state_dim_consistent(self, engine):
        engine.reset()
        assert engine.state_vector().shape == (engine.state_dim(),)

    def test_state_receptor_block_static(self, engine):
        s0 = engine.reset().state
        engine.apply_action(0)
        s1 = engine.state_vector()
        n_rec = engine.receptor.n_atoms * 3
        np.testing.assert_array_equal(s0[:n_rec], s1[:n_rec])
        assert not np.array_equal(s0[n_rec:], s1[n_rec:])

    def test_exclude_receptor_shrinks_state(self, small_complex):
        eng = MetadockEngine(small_complex, include_receptor_in_state=False)
        assert eng.state_dim() == 3 * eng.template.n_atoms + 3 * eng.template.n_bonds

    def test_score_matches_direct_evaluation(self, engine):
        engine.reset()
        engine.apply_action(4)
        lig = engine.template.with_coords(engine.ligand_coords())
        assert engine.score() == pytest.approx(
            interaction_score(engine.receptor, lig)
        )

    def test_score_cache_counts_evaluations(self, engine):
        engine.reset()  # observe() inside reset already scored the pose
        n0 = engine.score_evaluations
        engine.score()
        engine.score()  # both served from the cache
        assert engine.score_evaluations == n0
        engine.apply_action(0)  # invalidates
        engine.score()
        engine.score()
        assert engine.score_evaluations == n0 + 1

    def test_score_pose_does_not_disturb_state(self, engine):
        engine.reset()
        pose_before = engine.pose
        s = engine.score_pose(Pose(np.array([0, 0, 20.0]), Pose.identity().orientation))
        assert np.isfinite(s)
        assert engine.pose is pose_before

    def test_score_poses_batch_matches_single(self, engine):
        engine.reset()
        poses = [
            engine.pose,
            engine.pose.translated([1, 0, 0]),
            engine.pose.rotated("z", 0.4),
        ]
        batch = engine.score_poses(poses)
        singles = [engine.score_pose(p) for p in poses]
        np.testing.assert_allclose(batch, singles, rtol=1e-9)

    def test_score_poses_empty(self, engine):
        assert engine.score_poses([]).size == 0


class TestGeometryHelpers:
    def test_initial_com_distance(self, engine, small_complex):
        engine.reset()
        assert engine.com_distance() == pytest.approx(
            small_complex.initial_com_distance, rel=1e-6
        )

    def test_com_distance_tracks_shift(self, engine):
        engine.reset()
        d0 = engine.com_distance()
        engine.apply_action(4)  # +z, along the pocket axis, away
        assert engine.com_distance() > d0

    def test_crystal_rmsd_zero_at_crystal(self, engine, small_complex):
        engine.reset()
        crystal_pose = Pose(
            small_complex.ligand_crystal.centroid(),
            Pose.identity().orientation,
        )
        engine.set_pose(crystal_pose)
        assert engine.crystal_rmsd() == pytest.approx(0.0, abs=1e-9)

    def test_crystal_rmsd_positive_at_initial(self, engine):
        engine.reset()
        assert engine.crystal_rmsd() > 1.0
