"""JSON serialization of run records."""

import math

import numpy as np
import pytest

from repro.rl.trainer import EpisodeStats, TrainingHistory
from repro.utils.serialization import (
    dump_json,
    load_history,
    load_json,
    save_history,
)


class TestJsonRoundtrip:
    def test_plain_types(self, tmp_path):
        doc = {"a": 1, "b": [1.5, "x"], "c": {"d": True}}
        p = tmp_path / "doc.json"
        dump_json(doc, p)
        assert load_json(p) == doc

    def test_numpy_types(self, tmp_path):
        doc = {
            "arr": np.arange(3.0),
            "scalar": np.float64(2.5),
            "int": np.int32(7),
            "flag": np.bool_(True),
        }
        p = tmp_path / "doc.json"
        dump_json(doc, p)
        back = load_json(p)
        assert back["arr"] == [0.0, 1.0, 2.0]
        assert back["scalar"] == 2.5
        assert back["int"] == 7
        assert back["flag"] is True

    def test_nan_and_inf(self, tmp_path):
        doc = {"nan": float("nan"), "inf": float("inf"), "ninf": float("-inf")}
        p = tmp_path / "doc.json"
        dump_json(doc, p)
        back = load_json(p)
        assert math.isnan(back["nan"])
        assert back["inf"] == float("inf")
        assert back["ninf"] == float("-inf")

    def test_dataclass_tree(self, tmp_path):
        stats = EpisodeStats(
            episode=0, steps=5, total_reward=1.0, avg_max_q=2.0,
            best_score=3.0, final_score=2.5, epsilon=0.1, mean_loss=0.01,
            learning_active=True, termination="escape",
            min_crystal_rmsd=1.2,
        )
        p = tmp_path / "s.json"
        dump_json(stats, p)
        back = load_json(p)
        assert back["termination"] == "escape"
        assert back["min_crystal_rmsd"] == 1.2


class TestHistoryRoundtrip:
    def _history(self):
        h = TrainingHistory(total_steps=20, wall_seconds=1.5)
        for k in range(3):
            h.episodes.append(
                EpisodeStats(
                    episode=k, steps=10, total_reward=float(k),
                    avg_max_q=float(k) * 2, best_score=float(k) + 1,
                    final_score=float(k), epsilon=0.5, mean_loss=0.1,
                    learning_active=k > 0, termination="x",
                    min_crystal_rmsd=float("nan") if k == 0 else 1.0,
                )
            )
        return h

    def test_roundtrip(self, tmp_path):
        h = self._history()
        p = tmp_path / "h.json"
        save_history(h, p)
        back = load_history(p)
        assert back.total_steps == 20
        assert back.wall_seconds == 1.5
        assert len(back.episodes) == 3
        np.testing.assert_allclose(
            back.figure4_series(), h.figure4_series()
        )
        assert math.isnan(back.episodes[0].min_crystal_rmsd)

    def test_real_training_history(self, tmp_path, tiny_run_config):
        from repro.experiments.figure4 import run_figure4_experiment

        result = run_figure4_experiment(tiny_run_config)
        p = tmp_path / "run.json"
        save_history(result.history, p)
        back = load_history(p)
        assert back.best_score == pytest.approx(result.history.best_score)
        assert back.docking_success_rate() == pytest.approx(
            result.history.docking_success_rate()
        )
