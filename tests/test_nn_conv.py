"""Convolutional stack: shapes, gradients, pooling, the CNN factory."""

import numpy as np
import pytest

from repro.nn.conv import Conv2D, Flatten, MaxPool2D, Reshape, build_cnn
from repro.nn.gradcheck import check_gradients, numerical_gradient
from repro.nn.losses import MSELoss


class TestReshapeFlatten:
    def test_roundtrip(self, rng):
        r = Reshape((2, 3, 4))
        x = rng.normal(size=(5, 24))
        y = r.forward(x)
        assert y.shape == (5, 2, 3, 4)
        g = r.backward(y)
        assert g.shape == (5, 24)
        np.testing.assert_array_equal(g, x)

    def test_flatten(self, rng):
        f = Flatten()
        x = rng.normal(size=(3, 2, 4, 4))
        y = f.forward(x)
        assert y.shape == (3, 32)
        g = f.backward(y)
        np.testing.assert_array_equal(g, x)

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            Flatten().backward(np.zeros((1, 4)))


class TestConv2DForward:
    def test_valid_output_shape(self):
        conv = Conv2D(2, 5, kernel_size=3, stride=1, padding="valid", rng=0)
        out = conv.forward(np.zeros((4, 2, 8, 8)))
        assert out.shape == (4, 5, 6, 6)
        assert conv.output_shape(8, 8) == (5, 6, 6)

    def test_same_output_shape(self):
        conv = Conv2D(1, 3, kernel_size=3, stride=1, padding="same", rng=0)
        out = conv.forward(np.zeros((2, 1, 7, 7)))
        assert out.shape == (2, 3, 7, 7)

    def test_stride(self):
        conv = Conv2D(1, 2, kernel_size=3, stride=2, padding="valid", rng=0)
        out = conv.forward(np.zeros((1, 1, 9, 9)))
        assert out.shape == (1, 2, 4, 4)

    def test_matches_manual_convolution(self, rng):
        conv = Conv2D(1, 1, kernel_size=2, stride=1, padding="valid", rng=0)
        conv.w[...] = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        conv.b[...] = 0.5
        x = rng.normal(size=(1, 1, 3, 3))
        out = conv.forward(x)
        for i in range(2):
            for j in range(2):
                patch = x[0, 0, i : i + 2, j : j + 2]
                expected = (patch * conv.w[0, 0]).sum() + 0.5
                assert out[0, 0, i, j] == pytest.approx(expected)

    def test_channel_mismatch_rejected(self):
        conv = Conv2D(3, 4, rng=0)
        with pytest.raises(ValueError):
            conv.forward(np.zeros((1, 2, 8, 8)))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Conv2D(1, 1, kernel_size=0)
        with pytest.raises(ValueError):
            Conv2D(1, 1, padding="reflect")

    def test_translation_equivariance_interior(self, rng):
        # Shifting the input by one pixel shifts the 'valid' output.
        conv = Conv2D(1, 1, kernel_size=3, stride=1, padding="valid", rng=1)
        x = np.zeros((1, 1, 10, 10))
        x[0, 0, 4, 4] = 1.0
        y1 = conv.forward(x)
        x2 = np.roll(x, 1, axis=3)
        y2 = conv.forward(x2)
        np.testing.assert_allclose(y2[0, 0, :, 1:], y1[0, 0, :, :-1], atol=1e-12)


class TestConv2DBackward:
    def _gradcheck_input(self, conv, x, rng):
        g_out_shape = conv.forward(x, train=True).shape
        g_out = rng.normal(size=g_out_shape)
        analytic = conv.backward(g_out)

        x_var = x.copy()

        def f():
            return float((conv.forward(x_var, train=False) * g_out).sum())

        num = numerical_gradient(f, x_var)
        np.testing.assert_allclose(analytic, num, rtol=1e-5, atol=1e-8)

    def test_input_gradient_valid(self, rng):
        conv = Conv2D(2, 3, kernel_size=2, stride=1, padding="valid", rng=0)
        self._gradcheck_input(conv, rng.normal(size=(2, 2, 5, 5)), rng)

    def test_input_gradient_same_stride2(self, rng):
        conv = Conv2D(1, 2, kernel_size=3, stride=2, padding="same", rng=0)
        self._gradcheck_input(conv, rng.normal(size=(1, 1, 6, 6)), rng)

    def test_weight_gradient(self, rng):
        conv = Conv2D(1, 2, kernel_size=2, stride=1, rng=0)
        x = rng.normal(size=(2, 1, 4, 4))
        g_out = rng.normal(size=conv.forward(x).shape)
        conv.zero_grad()
        conv.forward(x, train=True)
        conv.backward(g_out)
        analytic = conv.dw.copy()

        def f():
            return float((conv.forward(x, train=False) * g_out).sum())

        num = numerical_gradient(f, conv.w)
        np.testing.assert_allclose(analytic, num, rtol=1e-5, atol=1e-8)

    def test_grad_accumulates_and_resets(self, rng):
        conv = Conv2D(1, 1, kernel_size=2, rng=0)
        x = rng.normal(size=(1, 1, 4, 4))
        g = rng.normal(size=(1, 1, 3, 3))
        conv.forward(x)
        conv.backward(g)
        first = conv.dw.copy()
        conv.forward(x)
        conv.backward(g)
        np.testing.assert_allclose(conv.dw, 2 * first)
        conv.zero_grad()
        assert (conv.dw == 0).all()


class TestMaxPool2D:
    def test_forward_values(self):
        pool = MaxPool2D(2)
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = pool.forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_ragged_border_truncated(self):
        pool = MaxPool2D(2)
        out = pool.forward(np.zeros((1, 1, 5, 5)))
        assert out.shape == (1, 1, 2, 2)

    def test_backward_routes_to_argmax(self):
        pool = MaxPool2D(2)
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        pool.forward(x, train=True)
        g = pool.backward(np.array([[[[10.0]]]]))
        np.testing.assert_array_equal(
            g, [[[[0.0, 0.0], [0.0, 10.0]]]]
        )

    def test_backward_ties_conserve_gradient(self):
        pool = MaxPool2D(2)
        x = np.ones((1, 1, 2, 2))
        pool.forward(x, train=True)
        g = pool.backward(np.array([[[[8.0]]]]))
        assert g.sum() == pytest.approx(8.0)

    def test_gradcheck(self, rng):
        pool = MaxPool2D(2)
        # Distinct values avoid ties (subgradient ambiguity).
        x = rng.permutation(64).astype(float).reshape(1, 1, 8, 8)
        g_out = rng.normal(size=(1, 1, 4, 4))
        pool.forward(x, train=True)
        analytic = pool.backward(g_out)
        x_var = x.copy()

        def f():
            return float((pool.forward(x_var, train=False) * g_out).sum())

        num = numerical_gradient(f, x_var)
        np.testing.assert_allclose(analytic, num, rtol=1e-5, atol=1e-8)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            MaxPool2D(0)


class TestBuildCnn:
    def test_end_to_end_shapes(self, rng):
        net = build_cnn((6, 16, 16), 12, conv_channels=(8, 16), hidden=32, rng=0)
        x = rng.normal(size=(4, 6 * 16 * 16))
        out = net.predict(x)
        assert out.shape == (4, 12)

    def test_full_gradcheck(self, rng):
        net = build_cnn(
            (2, 6, 6), 3, conv_channels=(3,), hidden=8, pool=2, rng=0
        )
        gen = np.random.default_rng(2)
        x = gen.normal(size=(2, 2 * 6 * 6))
        t = gen.normal(size=(2, 3))
        check_gradients(net, x, MSELoss(), t, rtol=1e-3)

    def test_trains_on_toy_images(self, rng):
        # Classify whether the bright blob is left or right.
        from repro.nn.optimizers import Adam

        net = build_cnn((1, 8, 8), 2, conv_channels=(4,), hidden=16, rng=0)
        opt = Adam(net.params(), net.grads(), lr=0.01)
        loss = MSELoss()
        X = np.zeros((64, 1, 8, 8))
        Y = np.zeros((64, 2))
        for k in range(64):
            col = rng.integers(0, 8)
            X[k, 0, rng.integers(0, 8), col] = 1.0
            Y[k, int(col >= 4)] = 1.0
        Xf = X.reshape(64, -1)
        for _ in range(150):
            idx = rng.integers(0, 64, size=16)
            net.zero_grad()
            pred = net.forward(Xf[idx])
            _v, g = loss(pred, Y[idx])
            net.backward(g)
            opt.step()
        acc = (np.argmax(net.predict(Xf), axis=1) == np.argmax(Y, axis=1)).mean()
        assert acc > 0.9

    def test_checkpoint_roundtrip(self, tmp_path, rng):
        from repro.nn.checkpoints import load_network, save_network

        net = build_cnn((2, 8, 8), 4, conv_channels=(3,), hidden=8, rng=0)
        p = tmp_path / "cnn.npz"
        save_network(net, p)
        other = build_cnn((2, 8, 8), 4, conv_channels=(3,), hidden=8, rng=9)
        load_network(other, p)
        x = rng.normal(size=(2, 2 * 8 * 8))
        np.testing.assert_allclose(net.predict(x), other.predict(x))

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            build_cnn((1, 8, 8), 2, activation="gelu")
