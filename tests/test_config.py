"""Config dataclasses: Table 1 defaults, validation, presets."""

import dataclasses

import pytest

from repro.config import (
    PAPER_CONFIG,
    ComplexConfig,
    DQNDockingConfig,
    ci_scale_config,
)


class TestDQNDockingConfigDefaults:
    def test_paper_rl_block(self):
        cfg = PAPER_CONFIG
        assert cfg.episodes == 1800
        assert cfg.max_steps_per_episode == 1000
        assert cfg.state_space == 16599
        assert cfg.action_space == 12
        assert cfg.shift_length == 1.0
        assert cfg.rotation_angle_deg == 0.5
        assert cfg.initial_exploration_steps == 20000
        assert cfg.epsilon_start == 1.0
        assert cfg.epsilon_final == 0.05
        assert cfg.epsilon_decay == pytest.approx(4.5e-5)
        assert cfg.gamma == 0.99
        assert cfg.replay_capacity == 400000
        assert cfg.learning_start == 10000
        assert cfg.target_update_steps == 1000

    def test_paper_dl_block(self):
        cfg = PAPER_CONFIG
        assert cfg.hidden_layers == 2
        assert cfg.hidden_size == 135
        assert cfg.activation == "relu"
        assert cfg.update_rule == "rmsprop"
        assert cfg.learning_rate == pytest.approx(0.00025)
        assert cfg.minibatch_size == 32

    def test_hidden_size_is_three_times_ligand_atoms(self):
        # Table 1 derives 135 as "45 x 3 atoms of the ligand".
        assert PAPER_CONFIG.hidden_size == 3 * PAPER_CONFIG.complex.ligand_atoms

    def test_game_rules(self):
        cfg = PAPER_CONFIG
        assert cfg.escape_factor == pytest.approx(4.0 / 3.0)
        assert cfg.low_score_patience == 20
        assert cfg.low_score_threshold == -100000.0

    def test_complex_matches_2bsm(self):
        assert PAPER_CONFIG.complex.receptor_atoms == 3264
        assert PAPER_CONFIG.complex.ligand_atoms == 45
        assert PAPER_CONFIG.complex.rotatable_bonds == 6


class TestValidation:
    def test_rejects_bad_episodes(self):
        with pytest.raises(ValueError):
            DQNDockingConfig(episodes=0)

    def test_rejects_epsilon_order(self):
        with pytest.raises(ValueError):
            DQNDockingConfig(epsilon_start=0.01, epsilon_final=0.5)

    def test_rejects_gamma_out_of_range(self):
        with pytest.raises(ValueError):
            DQNDockingConfig(gamma=1.5)

    def test_rejects_unknown_variant(self):
        with pytest.raises(ValueError):
            DQNDockingConfig(variant="a3c")

    def test_rainbow_variant_accepted(self):
        cfg = DQNDockingConfig(variant="rainbow")
        assert cfg.variant == "rainbow"

    def test_rejects_unknown_comm_mode(self):
        with pytest.raises(ValueError):
            DQNDockingConfig(comm_mode="socket")

    def test_rejects_unknown_loss(self):
        with pytest.raises(ValueError):
            DQNDockingConfig(loss="l1")

    def test_rejects_tiny_replay(self):
        with pytest.raises(ValueError):
            DQNDockingConfig(replay_capacity=8, minibatch_size=32)

    def test_complex_rejects_tiny_receptor(self):
        with pytest.raises(ValueError):
            ComplexConfig(receptor_atoms=2)

    def test_complex_rejects_negative_pocket(self):
        with pytest.raises(ValueError):
            ComplexConfig(pocket_depth=-1.0)


class TestAccessors:
    def test_n_actions_rigid(self):
        assert PAPER_CONFIG.n_actions == 12

    def test_n_actions_flexible(self):
        flex = PAPER_CONFIG.replace(flexible_ligand=True)
        # 12 rigid + 2 signed actions per rotatable bond.
        assert flex.n_actions == 12 + 2 * 6

    def test_replace_returns_new_frozen_instance(self):
        other = PAPER_CONFIG.replace(episodes=5)
        assert other.episodes == 5
        assert PAPER_CONFIG.episodes == 1800
        with pytest.raises(dataclasses.FrozenInstanceError):
            other.episodes = 7  # type: ignore[misc]

    def test_table1_rows_cover_all_published_rows(self):
        rows = PAPER_CONFIG.table1_rows()
        assert len(rows) == 20  # 14 RL + 6 DL rows
        names = [r[0] for r in rows]
        assert "Number of episodes M" in names
        assert "Minibatch size" in names


class TestCiScaleConfig:
    def test_structure_preserved(self):
        cfg = ci_scale_config(episodes=10, seed=3)
        assert cfg.hidden_size == 3 * cfg.complex.ligand_atoms
        assert cfg.learning_start < cfg.episodes * cfg.max_steps_per_episode
        assert cfg.replay_capacity >= cfg.minibatch_size

    def test_overrides_apply(self):
        cfg = ci_scale_config(episodes=10, seed=0, gamma=0.5, variant="ddqn")
        assert cfg.gamma == 0.5
        assert cfg.variant == "ddqn"

    def test_deterministic_in_seed(self):
        a = ci_scale_config(episodes=10, seed=3)
        b = ci_scale_config(episodes=10, seed=3)
        assert a == b

    def test_seed_changes_complex_seed(self):
        a = ci_scale_config(episodes=10, seed=3)
        b = ci_scale_config(episodes=10, seed=4)
        assert a.complex.seed != b.complex.seed


class TestConfigFromDict:
    def test_roundtrips_manifest_form(self):
        import dataclasses
        import json

        from repro.config import config_from_dict

        cfg = ci_scale_config(episodes=10, seed=3, variant="rainbow")
        # The manifest stores the config as asdict -> JSON.
        data = json.loads(json.dumps(dataclasses.asdict(cfg)))
        assert config_from_dict(data) == cfg

    def test_ignores_unknown_keys(self):
        import dataclasses

        from repro.config import config_from_dict

        data = dataclasses.asdict(ci_scale_config(episodes=5, seed=1))
        data["from_the_future"] = True
        data["complex"]["also_new"] = 9
        assert config_from_dict(data) == ci_scale_config(episodes=5, seed=1)
