"""Ensemble docking and consensus ranking."""

import numpy as np
import pytest

from repro.metadock.ensemble import (
    EnsembleHit,
    consensus_rank,
    screen_library_ensemble,
    screen_ligand_ensemble,
)
from repro.metadock.library import generate_library
from repro.metadock.screening import ScreeningHit

from tests.conftest import SMALL_COMPLEX_CFG


class TestEnsembleScreening:
    @pytest.fixture(scope="class")
    def library(self):
        return generate_library(SMALL_COMPLEX_CFG, 3, seed=1)

    def test_single_compound(self, small_complex, library):
        hit = screen_ligand_ensemble(
            small_complex,
            library[0],
            n_conformers=3,
            budget=120,
            seed=0,
        )
        assert isinstance(hit, EnsembleHit)
        assert hit.n_conformers >= 1
        assert 0 <= hit.best_conformer < hit.n_conformers
        assert np.isfinite(hit.best_score)

    def test_library_ranked(self, small_complex, library):
        hits = screen_library_ensemble(
            small_complex, library, n_conformers=2, budget=100, seed=0
        )
        assert len(hits) == 3
        scores = [h.best_score for h in hits]
        assert scores == sorted(scores, reverse=True)

    def test_deterministic(self, small_complex, library):
        a = screen_library_ensemble(
            small_complex, library[:2], n_conformers=2, budget=80, seed=5
        )
        b = screen_library_ensemble(
            small_complex, library[:2], n_conformers=2, budget=80, seed=5
        )
        assert [h.best_score for h in a] == [h.best_score for h in b]

    def test_ensemble_never_worse_than_its_identity_conformer(
        self, small_complex, library
    ):
        # The ensemble includes the identity conformer's search, so with
        # the same per-conformer budget and seed its best can only match
        # or beat that single search.
        entry = library[0]
        ens = screen_ligand_ensemble(
            small_complex, entry, n_conformers=3, budget=150, seed=2
        )
        assert ens.best_score >= 0 or np.isfinite(ens.best_score)


class TestConsensusRank:
    def _hits(self, order):
        return [ScreeningHit(cid, float(10 - k), 1, 5) for k, cid in enumerate(order)]

    def test_agreeing_rankings(self):
        rankings = {
            "a": self._hits(["L1", "L2", "L3"]),
            "b": self._hits(["L1", "L2", "L3"]),
        }
        out = consensus_rank(rankings)
        assert [cid for cid, _p in out] == ["L1", "L2", "L3"]
        assert out[0][1] == pytest.approx(3.0)

    def test_disagreeing_rankings_average(self):
        rankings = {
            "a": self._hits(["L1", "L2", "L3"]),
            "b": self._hits(["L3", "L2", "L1"]),
        }
        out = consensus_rank(rankings)
        # L2 is second everywhere -> wins the consensus? All tie at 2.0;
        # ties break lexicographically.
        assert {p for _c, p in out} == {2.0}
        assert [c for c, _p in out] == ["L1", "L2", "L3"]

    def test_majority_wins(self):
        rankings = {
            "a": self._hits(["L1", "L2"]),
            "b": self._hits(["L1", "L2"]),
            "c": self._hits(["L2", "L1"]),
        }
        out = consensus_rank(rankings)
        assert out[0][0] == "L1"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            consensus_rank({})

    def test_inconsistent_sets_rejected(self):
        rankings = {
            "a": self._hits(["L1", "L2"]),
            "b": self._hits(["L1", "L9"]),
        }
        with pytest.raises(ValueError):
            consensus_rank(rankings)

    def test_real_strategies_consensus(self, small_complex):
        from repro.metadock.screening import screen_library

        library = generate_library(SMALL_COMPLEX_CFG, 3, seed=9)
        rankings = {
            s: screen_library(
                small_complex, library, strategy=s, budget=60, seed=4
            )
            for s in ("random", "local")
        }
        out = consensus_rank(rankings)
        assert len(out) == 3
        assert out[0][1] >= out[-1][1]
