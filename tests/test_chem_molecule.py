"""Molecule: construction, geometry, editing, concatenation."""

import numpy as np
import pytest

from repro.chem.elements import ELEMENTS, element, vdw_parameters
from repro.chem.molecule import Molecule


def water() -> Molecule:
    return Molecule.from_symbols(
        ["O", "H", "H"],
        [[0.0, 0.0, 0.0], [0.96, 0.0, 0.0], [-0.24, 0.93, 0.0]],
        bonds=[[0, 1], [0, 2]],
        name="water",
    )


class TestElements:
    def test_lookup_by_symbol_case_insensitive(self):
        assert element("c").symbol == "C"
        assert element(" N ").symbol == "N"

    def test_lookup_by_number(self):
        assert element(8).symbol == "O"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            element("XX")
        with pytest.raises(KeyError):
            element(999)

    def test_vdw_parameters_vectorized(self):
        sigma, eps = vdw_parameters(["C", "O"])
        assert sigma[0] == ELEMENTS["C"].sigma
        assert eps[1] == ELEMENTS["O"].epsilon

    def test_donor_acceptor_flags_sensible(self):
        assert ELEMENTS["O"].hbond_acceptor and ELEMENTS["N"].hbond_acceptor
        assert not ELEMENTS["C"].hbond_donor
        assert not ELEMENTS["H"].hbond_acceptor


class TestConstruction:
    def test_from_symbols_fills_parameters(self):
        w = water()
        assert w.n_atoms == 3
        assert w.sigma[0] == ELEMENTS["O"].sigma
        assert bool(w.hbond_donor[0]) is True
        assert bool(w.hbond_donor[1]) is False

    def test_coord_shape_enforced(self):
        with pytest.raises(ValueError):
            Molecule.from_symbols(["C"], [[0.0, 0.0]])

    def test_bond_index_bounds_enforced(self):
        with pytest.raises(ValueError):
            Molecule.from_symbols(
                ["C", "C"], [[0, 0, 0], [1.5, 0, 0]], bonds=[[0, 5]]
            )

    def test_self_bond_rejected(self):
        with pytest.raises(ValueError):
            Molecule.from_symbols(
                ["C", "C"], [[0, 0, 0], [1.5, 0, 0]], bonds=[[1, 1]]
            )

    def test_arrays_contiguous(self):
        w = water()
        assert w.coords.flags["C_CONTIGUOUS"]
        assert w.charges.flags["C_CONTIGUOUS"]


class TestGeometry:
    def test_center_of_mass_weighted_toward_oxygen(self):
        w = water()
        com = w.center_of_mass()
        cen = w.centroid()
        # COM is closer to the O atom than the unweighted centroid.
        assert np.linalg.norm(com - w.coords[0]) < np.linalg.norm(
            cen - w.coords[0]
        )

    def test_radius_of_gyration_positive(self):
        assert water().radius_of_gyration() > 0.0

    def test_bounding_radius_covers_all_atoms(self):
        w = water()
        r = w.bounding_radius()
        d = np.linalg.norm(w.coords - w.centroid(), axis=1)
        assert r == pytest.approx(d.max())


class TestEditing:
    def test_with_coords_shares_parameters(self):
        w = water()
        w2 = w.with_coords(w.coords + 1.0)
        assert w2.charges is w.charges  # shared by design
        assert not np.shares_memory(w2.coords, w.coords)

    def test_with_coords_shape_checked(self):
        with pytest.raises(ValueError):
            water().with_coords(np.zeros((5, 3)))

    def test_translated(self):
        w = water().translated([1.0, 0.0, 0.0])
        assert w.coords[0, 0] == pytest.approx(1.0)

    def test_copy_is_deep(self):
        w = water()
        c = w.copy()
        c.coords[0, 0] = 99.0
        assert w.coords[0, 0] == 0.0

    def test_subset_remaps_bonds(self):
        w = water()
        sub = w.subset([0, 1])
        assert sub.n_atoms == 2
        assert sub.n_bonds == 1
        np.testing.assert_array_equal(sub.bonds, [[0, 1]])

    def test_subset_out_of_range(self):
        with pytest.raises(IndexError):
            water().subset([0, 7])

    def test_concatenate_offsets_bonds(self):
        w = water()
        both = Molecule.concatenate([w, w], name="dimer")
        assert both.n_atoms == 6
        assert both.n_bonds == 4
        assert both.bonds.max() == 5
        assert both.name == "dimer"

    def test_concatenate_empty_rejected(self):
        with pytest.raises(ValueError):
            Molecule.concatenate([])

    def test_repr_mentions_counts(self):
        assert "atoms=3" in repr(water())
