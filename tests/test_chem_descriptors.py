"""Molecular descriptors and trajectory PDB I/O."""

import io

import numpy as np
import pytest

from repro.chem.descriptors import (
    Descriptors,
    compute_descriptors,
    library_diversity,
)
from repro.chem.molecule import Molecule
from repro.chem.pdb import read_pdb_models, write_pdb_trajectory


class TestComputeDescriptors:
    def test_water_values(self):
        w = Molecule.from_symbols(
            ["O", "H", "H"],
            [[0.0, 0, 0], [0.96, 0, 0], [-0.24, 0.93, 0]],
            bonds=[[0, 1], [0, 2]],
        )
        d = compute_descriptors(w)
        assert d.n_atoms == 3
        assert d.n_heavy_atoms == 1
        assert d.molecular_weight == pytest.approx(18.015, abs=0.01)
        assert d.n_rotatable_bonds == 0
        assert d.n_hbond_donors == 1  # the oxygen
        assert d.n_hbond_acceptors == 1
        assert d.radius_of_gyration > 0

    def test_ligand_descriptors(self, small_complex):
        d = compute_descriptors(small_complex.ligand_crystal)
        assert d.n_atoms == small_complex.ligand_crystal.n_atoms
        assert d.net_charge == pytest.approx(
            small_complex.ligand_crystal.charges.sum()
        )
        assert d.n_rotatable_bonds >= 2
        assert d.max_extent >= d.radius_of_gyration

    def test_lipinski_small_molecule_zero_violations(self, small_complex):
        d = compute_descriptors(small_complex.ligand_crystal)
        assert d.lipinski_violations() == 0

    def test_lipinski_violations_counted(self):
        d = Descriptors(
            n_atoms=100, n_heavy_atoms=60, molecular_weight=700.0,
            net_charge=0.0, n_rotatable_bonds=10, n_hbond_donors=8,
            n_hbond_acceptors=12, radius_of_gyration=6.0, max_extent=10.0,
        )
        assert d.lipinski_violations() == 3

    def test_vector_shape(self, small_complex):
        v = compute_descriptors(small_complex.ligand_crystal).as_vector()
        assert v.shape == (9,)


class TestLibraryDiversity:
    def test_identical_library_zero(self, small_complex):
        lig = small_complex.ligand_crystal
        assert library_diversity([lig, lig.copy()]) == 0.0

    def test_diverse_library_positive(self):
        from repro.metadock.library import generate_library
        from tests.conftest import SMALL_COMPLEX_CFG

        lib = generate_library(SMALL_COMPLEX_CFG, 4, seed=0)
        assert library_diversity([e.ligand for e in lib]) > 0.0

    def test_singleton_zero(self, small_complex):
        assert library_diversity([small_complex.ligand_crystal]) == 0.0


class TestPdbTrajectory:
    def _template(self):
        return Molecule.from_symbols(
            ["C", "N"], [[0.0, 0, 0], [1.4, 0, 0]], name="traj"
        )

    def test_roundtrip(self):
        template = self._template()
        frames = [
            template.coords + k * np.array([0.0, 1.0, 0.0])
            for k in range(4)
        ]
        buf = io.StringIO()
        write_pdb_trajectory(frames, template, buf)
        back = read_pdb_models(io.StringIO(buf.getvalue()))
        assert len(back) == 4
        for orig, rt in zip(frames, back):
            np.testing.assert_allclose(rt, orig, atol=1e-3)

    def test_frame_shape_validated(self):
        template = self._template()
        with pytest.raises(ValueError):
            write_pdb_trajectory([np.zeros((5, 3))], template, io.StringIO())

    def test_no_models_rejected(self):
        with pytest.raises(ValueError):
            read_pdb_models(io.StringIO("END\n"))

    def test_engine_episode_export(self, engine, tmp_path):
        # Record a short trajectory from the engine and export it.
        engine.reset()
        frames = [engine.ligand_coords().copy()]
        for a in [5, 5, 7, 5]:
            engine.apply_action(a)
            frames.append(engine.ligand_coords().copy())
        path = tmp_path / "episode.pdb"
        write_pdb_trajectory(frames, engine.template, path)
        assert len(read_pdb_models(path)) == 5
