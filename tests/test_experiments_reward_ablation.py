"""Reward-scheme ablation and the RewardScheme wrapper."""

import numpy as np
import pytest

from repro.experiments.reward_ablation import (
    RewardAblationResult,
    RewardScheme,
    run_reward_ablation,
)

from tests.test_env_action_repeat import ScoreDeltaEnv


class TestRewardSchemeWrapper:
    def test_sign(self):
        env = RewardScheme(ScoreDeltaEnv(), "sign")
        env.reset()
        _s, r, _d, _i = env.step(0)
        assert r == 1.0
        _s, r, _d, _i = env.step(1)
        assert r == -1.0

    def test_clipped(self):
        env = RewardScheme(ScoreDeltaEnv(), "clipped")
        env.reset()
        _s, r, _d, _i = env.step(0)
        assert r == 1.0  # delta is exactly 1.0

    def test_scaled_is_smooth(self):
        env = RewardScheme(ScoreDeltaEnv(), "scaled", scale=2.0)
        env.reset()
        _s, r, _d, _i = env.step(0)
        assert r == pytest.approx(np.tanh(0.5))

    def test_potential_telescopes(self):
        class RmsdDeltaEnv(ScoreDeltaEnv):
            def step(self, action):
                s, r, d, info = super().step(action)
                info["crystal_rmsd"] = 10.0 - self.t  # shrinking
                return s, r, d, info

        gamma = 0.9
        env = RewardScheme(RmsdDeltaEnv(), "potential", gamma=gamma)
        env.reset()
        _s, r1, _d, _i = env.step(0)
        # First step: phi' = -9; prev defaults to phi' -> r = (g-1)*phi'.
        assert r1 == pytest.approx((gamma - 1.0) * (-9.0))
        _s, r2, _d, _i = env.step(0)
        assert r2 == pytest.approx(gamma * (-8.0) - (-9.0))

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            RewardScheme(ScoreDeltaEnv(), "fancy")

    def test_on_real_docking_env(self, engine):
        from repro.env.docking_env import DockingEnv

        env = RewardScheme(DockingEnv(engine), "scaled")
        env.reset()
        _s, r, _d, _i = env.step(5)
        assert -1.0 < r < 1.0


class TestRunRewardAblation:
    def test_all_schemes_trained(self, tiny_run_config):
        result = run_reward_ablation(
            tiny_run_config, schemes=("sign", "potential")
        )
        assert set(result.histories) == {"sign", "potential"}
        for h in result.histories.values():
            assert len(h.episodes) == tiny_run_config.episodes

    def test_summary_table(self, tiny_run_config):
        result = run_reward_ablation(tiny_run_config, schemes=("sign",))
        out = result.summary()
        assert "reward scheme" in out
        assert "sign" in out

    def test_empty_result_summary(self):
        assert "reward scheme" in RewardAblationResult().summary()
