"""Environment wrappers and comm channels in isolation."""

import numpy as np
import pytest

from repro.env.comm import FileComm, RamComm, make_comm
from repro.env.wrappers import (
    EpisodeRecorder,
    RewardScale,
    StateNormalizer,
    TimeLimit,
)


class FakeEnv:
    """Deterministic stub environment for wrapper tests."""

    def __init__(self, horizon=1000):
        self.horizon = horizon
        self.t = 0
        self.n_actions = 2
        self.state_dim = 3

    def reset(self):
        self.t = 0
        return np.array([0.0, 0.0, 0.0])

    def step(self, action):
        self.t += 1
        state = np.array([float(self.t), 2.0 * self.t, -1.0])
        done = self.t >= self.horizon
        return state, 1.0, done, {"score": float(self.t)}


class TestTimeLimit:
    def test_truncates(self):
        env = TimeLimit(FakeEnv(), max_steps=3)
        env.reset()
        for _ in range(2):
            _s, _r, done, _i = env.step(0)
            assert not done
        _s, _r, done, info = env.step(0)
        assert done
        assert info["termination"] == "time-limit"
        assert info["time_limit_truncated"]

    def test_reset_restarts_counter(self):
        env = TimeLimit(FakeEnv(), max_steps=2)
        env.reset()
        env.step(0)
        env.reset()
        _s, _r, done, _i = env.step(0)
        assert not done

    def test_inner_done_preserved(self):
        env = TimeLimit(FakeEnv(horizon=1), max_steps=100)
        env.reset()
        _s, _r, done, info = env.step(0)
        assert done
        assert "time_limit_truncated" not in info

    def test_invalid_max_steps(self):
        with pytest.raises(ValueError):
            TimeLimit(FakeEnv(), 0)

    def test_attribute_delegation(self):
        env = TimeLimit(FakeEnv(), 5)
        assert env.n_actions == 2
        assert env.state_dim == 3


class TestStateNormalizer:
    def test_stabilizes_statistics(self):
        env = StateNormalizer(FakeEnv())
        env.reset()
        states = [env.step(0)[0] for _ in range(200)]
        tail = np.stack(states[-50:])
        # z-scored growing sequence: magnitudes bounded, not exploding
        assert np.abs(tail).max() < 10.0

    def test_freeze_after(self):
        env = StateNormalizer(FakeEnv(), freeze_after=5)
        env.reset()
        for _ in range(10):
            env.step(0)
        # Stats freeze once they hold exactly freeze_after observations.
        assert env._stats.count == 5

    def test_constant_dim_not_nan(self):
        env = StateNormalizer(FakeEnv())
        env.reset()
        s, *_ = env.step(0)
        assert np.isfinite(s).all()


class TestRewardScale:
    def test_scales(self):
        env = RewardScale(FakeEnv(), 0.5)
        env.reset()
        _s, r, _d, _i = env.step(0)
        assert r == 0.5


class TestEpisodeRecorder:
    def test_records_episodes(self):
        env = EpisodeRecorder(FakeEnv(horizon=3), keep_episodes=2)
        for _ in range(3):
            env.reset()
            for _ in range(3):
                env.step(1)
        env.reset()  # flushes the last episode
        assert len(env.episodes) == 2  # capped
        assert len(env.episodes[-1]) == 3
        entry = env.episodes[-1][0]
        assert set(entry) == {"action", "reward", "score", "com_distance"}

    def test_invalid_keep(self):
        with pytest.raises(ValueError):
            EpisodeRecorder(FakeEnv(), 0)


class TestCommChannels:
    def test_ram_identity(self):
        comm = RamComm()
        s = np.arange(4.0)
        out_s, out_score = comm.exchange(s, -3.5)
        assert out_s is s
        assert out_score == -3.5

    def test_file_roundtrip_exact(self, tmp_path):
        comm = FileComm(tmp_path)
        s = np.array([1.5, -2.25e21, 3e-300])
        out_s, out_score = comm.exchange(s, -4.5e21)
        np.testing.assert_array_equal(out_s, s)
        assert out_score == -4.5e21

    def test_file_fsync_mode(self, tmp_path):
        comm = FileComm(tmp_path, fsync=True)
        out_s, out_score = comm.exchange(np.zeros(3), 1.0)
        assert out_score == 1.0

    def test_tempdir_cleanup(self):
        comm = FileComm()
        d = comm.directory
        comm.exchange(np.zeros(2), 0.0)
        assert d.exists()
        comm.close()
        assert not d.exists()

    def test_context_manager(self):
        with FileComm() as comm:
            comm.exchange(np.zeros(1), 0.0)
            d = comm.directory
        assert not d.exists()

    def test_factory(self):
        assert isinstance(make_comm("ram"), RamComm)
        fc = make_comm("file")
        assert isinstance(fc, FileComm)
        fc.close()
        with pytest.raises(ValueError):
            make_comm("pipe")
