"""Timers, tables, ASCII plots, running statistics."""

import time

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.ascii_plot import ascii_line_plot, sparkline
from repro.utils.running_stats import ExponentialMovingAverage, RunningStats
from repro.utils.tables import render_table
from repro.utils.timers import Timer, WallClock


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t.section("a"):
            pass
        with t.section("a"):
            pass
        assert t.counts["a"] == 2
        assert t.total("a") >= 0.0

    def test_mean_of_unknown_is_zero(self):
        assert Timer().mean("never") == 0.0

    def test_report_mentions_sections(self):
        t = Timer()
        with t.section("scoring"):
            time.sleep(0.001)
        assert "scoring" in t.report()

    def test_empty_report(self):
        assert "no timed sections" in Timer().report()

    def test_accumulates_on_exception(self):
        t = Timer()
        with pytest.raises(RuntimeError):
            with t.section("x"):
                raise RuntimeError("boom")
        assert t.counts["x"] == 1


class TestWallClock:
    def test_elapsed_monotone(self):
        w = WallClock()
        a = w.elapsed()
        b = w.elapsed()
        assert b >= a >= 0.0

    def test_split_resets(self):
        w = WallClock()
        time.sleep(0.002)
        first = w.split()
        second = w.split()
        assert first >= 0.002
        assert second < first


class TestRenderTable:
    def test_basic_layout(self):
        out = render_table(["a", "bb"], [[1, 2], [30, 4]])
        lines = out.splitlines()
        assert lines[0].startswith("+")
        assert "| a " in lines[1]
        # all rows same width
        assert len({len(l) for l in lines}) == 1

    def test_title_prepended(self):
        out = render_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_right_alignment(self):
        out = render_table(["num"], [[5], [500]], align=["r"])
        row = out.splitlines()[3]
        assert row == "|   5 |"

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_rejects_bad_align(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1]], align=["l", "r"])

    @given(
        st.lists(
            st.lists(st.integers(-1000, 1000), min_size=2, max_size=2),
            min_size=0,
            max_size=10,
        )
    )
    def test_never_raises_on_int_rows(self, rows):
        out = render_table(["c1", "c2"], rows)
        assert "c1" in out


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_matches(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_monotone_values_monotone_blocks(self):
        s = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert s[0] == "▁" and s[-1] == "█"

    def test_constant_input(self):
        s = sparkline([5, 5, 5])
        assert len(s) == 3 and len(set(s)) == 1

    def test_nan_becomes_space(self):
        assert sparkline([1.0, float("nan"), 2.0])[1] == " "


class TestAsciiLinePlot:
    def test_empty(self):
        assert "(no data)" in ascii_line_plot([])

    def test_contains_title_and_stars(self):
        out = ascii_line_plot([1, 2, 3, 2, 1], title="curve")
        assert out.splitlines()[0] == "curve"
        assert "*" in out

    def test_constant_series(self):
        out = ascii_line_plot([3, 3, 3, 3])
        assert "*" in out

    def test_all_nan(self):
        assert "(no finite data)" in ascii_line_plot([float("nan")] * 4)

    def test_buckets_long_series(self):
        out = ascii_line_plot(list(range(1000)), width=40)
        # No line should exceed label + axis + width characters.
        assert max(len(l) for l in out.splitlines()) <= 10 + 3 + 41


class TestRunningStats:
    def test_matches_numpy(self, rng):
        data = rng.normal(size=100)
        s = RunningStats()
        for x in data:
            s.update(x)
        assert s.mean == pytest.approx(data.mean())
        assert s.variance == pytest.approx(data.var())

    def test_vector_shape(self, rng):
        s = RunningStats((3,))
        for _ in range(10):
            s.update(rng.normal(size=3))
        assert s.mean.shape == (3,)
        assert (s.std >= 0).all()

    def test_shape_mismatch_rejected(self):
        s = RunningStats((2,))
        with pytest.raises(ValueError):
            s.update([1.0, 2.0, 3.0])

    def test_variance_before_two_samples(self):
        s = RunningStats()
        assert s.variance == 0.0
        s.update(5.0)
        assert s.variance == 0.0

    def test_merge_equals_concatenation(self, rng):
        a_data = rng.normal(size=37)
        b_data = rng.normal(size=53) + 2.0
        a, b = RunningStats(), RunningStats()
        for x in a_data:
            a.update(x)
        for x in b_data:
            b.update(x)
        merged = a.merge(b)
        both = np.concatenate([a_data, b_data])
        assert merged.count == 90
        assert merged.mean == pytest.approx(both.mean())
        assert merged.variance == pytest.approx(both.var())

    def test_merge_with_empty(self):
        a = RunningStats()
        a.update(1.0)
        merged = a.merge(RunningStats())
        assert merged.count == 1
        assert merged.mean == pytest.approx(1.0)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_property_matches_numpy(self, values):
        s = RunningStats()
        for v in values:
            s.update(v)
        arr = np.asarray(values)
        assert s.mean == pytest.approx(arr.mean(), rel=1e-9, abs=1e-6)
        assert s.variance == pytest.approx(arr.var(), rel=1e-6, abs=1e-4)


class TestEMA:
    def test_bias_correction_first_value(self):
        e = ExponentialMovingAverage(0.1)
        assert e.update(10.0) == pytest.approx(10.0)

    def test_converges_to_constant(self):
        e = ExponentialMovingAverage(0.5)
        for _ in range(50):
            e.update(3.0)
        assert e.value == pytest.approx(3.0)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            ExponentialMovingAverage(0.0)
        with pytest.raises(ValueError):
            ExponentialMovingAverage(1.5)

    def test_zero_before_updates(self):
        assert ExponentialMovingAverage(0.3).value == 0.0
