"""DockingEnv: reward rules, termination rules, protocol, comm modes."""

import numpy as np
import pytest

from repro.chem.builders import POCKET_AXIS
from repro.env.comm import FileComm, RamComm
from repro.env.docking_env import DockingEnv, make_env
from repro.env.flexible_env import FlexibleDockingEnv
from repro.env.spaces import Box, Discrete
from repro.metadock.engine import MetadockEngine

from tests.conftest import SMALL_COMPLEX_CFG


class TestSpaces:
    def test_discrete_contains(self):
        d = Discrete(4)
        assert d.contains(0) and d.contains(3)
        assert not d.contains(4) and not d.contains(-1)
        assert not d.contains(1.5)
        assert not d.contains("x")

    def test_discrete_sample_range(self):
        d = Discrete(3)
        assert all(0 <= d.sample(rng=k) < 3 for k in range(20))

    def test_discrete_invalid(self):
        with pytest.raises(ValueError):
            Discrete(0)

    def test_box_contains(self):
        b = Box(-1.0, 1.0, (2,))
        assert b.contains([0.0, 0.5])
        assert not b.contains([0.0, 2.0])
        assert not b.contains([0.0])

    def test_box_sample(self):
        b = Box(0.0, 1.0, (4,))
        s = b.sample(rng=0)
        assert b.contains(s)

    def test_box_unbounded_sample_rejected(self):
        import math

        b = Box(-math.inf, math.inf, (2,))
        with pytest.raises(ValueError):
            b.sample()

    def test_box_invalid_bounds(self):
        with pytest.raises(ValueError):
            Box(1.0, -1.0, (2,))


class TestProtocol:
    def test_reset_returns_state(self, env):
        s = env.reset()
        assert s.shape == (env.state_dim,)
        assert env.observation_space.shape == s.shape

    def test_step_before_reset_rejected(self, engine):
        e = DockingEnv(engine)
        with pytest.raises(RuntimeError):
            e.step(0)

    def test_invalid_action_rejected(self, env):
        env.reset()
        with pytest.raises(ValueError):
            env.step(12)
        with pytest.raises(ValueError):
            env.step(-1)

    def test_step_returns_tuple(self, env):
        env.reset()
        state, reward, done, info = env.step(0)
        assert state.shape == (env.state_dim,)
        assert reward in (-1.0, 0.0, 1.0)
        assert isinstance(done, bool)
        assert "score" in info and "com_distance" in info

    def test_reset_restores_initial_state(self, env):
        s0 = env.reset()
        env.step(0)
        env.step(6)
        s1 = env.reset()
        np.testing.assert_allclose(s1, s0)

    def test_step_counters(self, env):
        env.reset()
        env.step(0)
        env.step(1)
        assert env.episode_steps == 2
        assert env.total_steps == 2
        env.reset()
        assert env.episode_steps == 0
        assert env.total_steps == 2


class TestRewardRules:
    def test_reward_is_sign_of_score_change(self, env):
        env.reset()
        # Action 5 (-z) moves the ligand toward the pocket: score rises.
        _s, r_toward, _d, info_toward = env.step(5)
        assert r_toward == np.sign(info_toward["score_delta"])
        env.reset()
        _s, r_away, _d, info_away = env.step(4)
        assert r_away == np.sign(info_away["score_delta"])
        # And the two directions disagree.
        assert info_toward["score_delta"] * info_away["score_delta"] < 0

    def test_rewards_clipped_to_unit(self, env):
        env.reset()
        rng = np.random.default_rng(0)
        for _ in range(30):
            _s, r, done, _i = env.step(int(rng.integers(12)))
            assert r in (-1.0, 0.0, 1.0)
            if done:
                env.reset()

    def test_unchanged_score_zero_reward(self, engine):
        # A rotation of a spherically-distant ligand changes the score
        # negligibly but not exactly zero; test the exact-zero branch by
        # stepping the same pose twice via +x then -x and comparing the
        # cumulative effect instead: reward for identical score is 0.
        env = DockingEnv(engine)
        env.reset()
        s1 = env.engine.score()
        env.step(0)
        _s, r, _d, info = env.step(1)  # returns to the original pose
        assert info["score"] == pytest.approx(s1, rel=1e-12)
        # delta from the displaced pose back to original is positive or
        # negative depending on direction; just assert sign consistency:
        assert r == np.sign(info["score_delta"])


class TestTerminationRules:
    def test_escape_rule(self, engine):
        env = DockingEnv(engine, escape_factor=4.0 / 3.0)
        env.reset()
        done = False
        info = {}
        for _ in range(200):
            _s, _r, done, info = env.step(4)  # +z: straight away
            if done:
                break
        assert done
        assert info["termination"] == "escape"
        assert info["com_distance"] > info["escape_radius"]

    def test_deep_penetration_rule(self, engine):
        env = DockingEnv(
            engine, low_score_patience=5, low_score_threshold=-1000.0
        )
        env.reset()
        done = False
        info = {}
        for _ in range(300):
            _s, _r, done, info = env.step(5)  # -z: into the receptor
            if done:
                break
        assert done
        assert info["termination"] == "deep-penetration"

    def test_patience_resets_on_recovery(self, engine):
        env = DockingEnv(
            engine, low_score_patience=3, low_score_threshold=-1000.0
        )
        env.reset()
        # Drive in until the streak starts.
        streak_seen = 0
        for _ in range(100):
            _s, _r, done, info = env.step(5)
            if info["low_score_streak"] == 2:
                streak_seen = 2
                break
        assert streak_seen == 2
        # Step back out: streak must reset before hitting patience.
        _s, _r, done, info = env.step(4)
        if info["score"] >= -1000.0:
            assert info["low_score_streak"] == 0
            assert not done

    def test_escape_factor_validated(self, engine):
        with pytest.raises(ValueError):
            DockingEnv(engine, escape_factor=0.9)

    def test_patience_validated(self, engine):
        with pytest.raises(ValueError):
            DockingEnv(engine, low_score_patience=0)

    def test_paper_thresholds_default(self, engine):
        env = DockingEnv(engine)
        assert env.low_score_patience == 20
        assert env.low_score_threshold == -100000.0
        assert env.escape_factor == pytest.approx(4.0 / 3.0)


class TestCommIntegration:
    def test_file_comm_equivalent_to_ram(self, small_complex):
        def run(comm):
            engine = MetadockEngine(
                small_complex, shift_length=0.8, rotation_angle_deg=5.0
            )
            env = DockingEnv(engine, comm=comm)
            states, rewards = [], []
            s = env.reset()
            states.append(s.copy())
            for a in [0, 5, 5, 7, 2]:
                s, r, _d, _i = env.step(a)
                states.append(s.copy())
                rewards.append(r)
            env.close()
            return states, rewards

        ram_states, ram_rewards = run(RamComm())
        file_states, file_rewards = run(FileComm())
        assert ram_rewards == file_rewards
        for a, b in zip(ram_states, file_states):
            np.testing.assert_array_equal(a, b)

    def test_file_comm_counts_round_trips(self, small_complex):
        comm = FileComm()
        engine = MetadockEngine(small_complex)
        env = DockingEnv(engine, comm=comm)
        env.reset()
        env.step(0)
        env.step(1)
        assert comm.round_trips == 3  # reset + 2 steps
        env.close()


class TestMakeEnv:
    def test_from_ci_config(self, tiny_run_config):
        env = make_env(tiny_run_config)
        try:
            s = env.reset()
            assert s.shape[0] == env.state_dim
            assert env.n_actions == 12
        finally:
            env.close()

    def test_flexible_config_adds_actions(self, tiny_run_config):
        cfg = tiny_run_config.replace(flexible_ligand=True)
        env = make_env(cfg)
        try:
            assert env.n_actions == 12 + 2 * cfg.complex.rotatable_bonds
        finally:
            env.close()

    def test_reuses_built_complex(self, tiny_run_config, small_complex):
        env = make_env(tiny_run_config, small_complex)
        try:
            assert env.engine.built is small_complex
        finally:
            env.close()


class TestFlexibleEnv:
    def test_action_space(self, small_complex):
        env = FlexibleDockingEnv(small_complex, n_torsions=2)
        try:
            assert env.n_actions == 16
            env.reset()
            _s, r, _d, _i = env.step(12)  # torsion action
            assert r in (-1.0, 0.0, 1.0)
        finally:
            env.close()

    def test_torsion_step_changes_state(self, small_complex):
        env = FlexibleDockingEnv(small_complex, n_torsions=2)
        try:
            s0 = env.reset()
            s1, _r, _d, _i = env.step(14)
            assert not np.array_equal(s0, s1)
        finally:
            env.close()
