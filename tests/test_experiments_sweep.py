"""Hyperparameter sweep driver."""

import pytest

from repro.experiments.sweep import run_sweep


class TestRunSweep:
    def test_sweeps_target_update(self, tiny_run_config):
        result = run_sweep(
            tiny_run_config, "target_update_steps", [25, 100]
        )
        assert set(result.results) == {25, 100}
        for r in result.results.values():
            assert len(r.history.episodes) == tiny_run_config.episodes

    def test_summary_and_best(self, tiny_run_config):
        result = run_sweep(tiny_run_config, "learning_rate", [0.001, 0.01])
        out = result.summary()
        assert "learning_rate" in out
        assert result.best_setting() in (0.001, 0.01)
        assert len(result.shapes()) == 2

    def test_unknown_parameter_rejected(self, tiny_run_config):
        with pytest.raises(ValueError):
            run_sweep(tiny_run_config, "warp_factor", [1])

    def test_empty_values_rejected(self, tiny_run_config):
        with pytest.raises(ValueError):
            run_sweep(tiny_run_config, "gamma", [])

    def test_variant_sweep(self, tiny_run_config):
        result = run_sweep(tiny_run_config, "variant", ["dqn", "ddqn"])
        assert set(result.results) == {"dqn", "ddqn"}
