"""Property-based engine invariants (hypothesis over action sequences)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metadock.engine import MetadockEngine

actions = st.integers(min_value=0, max_value=11)
action_seqs = st.lists(actions, min_size=1, max_size=12)


def _inverse(a: int) -> int:
    """Each rigid action's inverse is its +-partner."""
    return a + 1 if a % 2 == 0 else a - 1


@st.composite
def palindromic_seq(draw):
    """A sequence followed by its reversed inverses (net identity)."""
    seq = draw(action_seqs)
    return seq + [_inverse(a) for a in reversed(seq)]


class TestEngineInvariants:
    @given(palindromic_seq())
    @settings(max_examples=20, deadline=None)
    def test_inverse_sequences_restore_state(self, small_complex, seq):
        engine = MetadockEngine(
            small_complex, shift_length=0.7, rotation_angle_deg=3.0
        )
        start = engine.reset().state
        for a in seq:
            engine.apply_action(a)
        np.testing.assert_allclose(
            engine.state_vector(), start, atol=1e-8
        )

    @given(action_seqs)
    @settings(max_examples=20, deadline=None)
    def test_internal_geometry_rigid(self, small_complex, seq):
        # Rigid actions never change intra-ligand distances.
        engine = MetadockEngine(
            small_complex, shift_length=0.7, rotation_angle_deg=3.0
        )
        engine.reset()
        ref = engine.ligand_coords()
        d_ref = np.linalg.norm(ref[0] - ref[-1])
        for a in seq:
            engine.apply_action(a)
        cur = engine.ligand_coords()
        assert np.linalg.norm(cur[0] - cur[-1]) == pytest.approx(
            d_ref, abs=1e-9
        )

    @given(action_seqs)
    @settings(max_examples=15, deadline=None)
    def test_score_matches_fresh_engine_at_same_pose(self, small_complex, seq):
        # Path independence: score depends only on the final pose.
        a_eng = MetadockEngine(
            small_complex, shift_length=0.7, rotation_angle_deg=3.0
        )
        a_eng.reset()
        for a in seq:
            a_eng.apply_action(a)
        b_eng = MetadockEngine(
            small_complex, shift_length=0.7, rotation_angle_deg=3.0
        )
        b_eng.reset()
        assert b_eng.score_pose(a_eng.pose) == pytest.approx(
            a_eng.score(), rel=1e-9
        )

    @given(st.integers(0, 5))
    @settings(max_examples=6, deadline=None)
    def test_translation_order_commutes(self, small_complex, seed):
        rng = np.random.default_rng(seed)
        seq = list(rng.integers(0, 6, size=6))  # shifts only
        a_eng = MetadockEngine(small_complex, shift_length=0.7)
        a_eng.reset()
        for a in seq:
            a_eng.apply_action(int(a))
        b_eng = MetadockEngine(small_complex, shift_length=0.7)
        b_eng.reset()
        for a in reversed(seq):
            b_eng.apply_action(int(a))
        np.testing.assert_allclose(
            a_eng.ligand_coords(), b_eng.ligand_coords(), atol=1e-9
        )

    @given(action_seqs)
    @settings(max_examples=10, deadline=None)
    def test_observation_consistency(self, small_complex, seq):
        engine = MetadockEngine(
            small_complex, shift_length=0.7, rotation_angle_deg=3.0
        )
        engine.reset()
        for a in seq:
            engine.apply_action(a)
        obs = engine.observe()
        np.testing.assert_allclose(obs.state, engine.state_vector())
        assert obs.score == pytest.approx(engine.score())
        np.testing.assert_allclose(
            obs.ligand_coords, engine.ligand_coords()
        )
