"""Float32 NN path: seeded equivalence against float64 and drift bounds.

The float32 hot loop must be numerically *faithful*, not just fast:

- weights are drawn in float64 then cast, so an f32 and an f64 network
  built from the same seed start from the same draws;
- a single forward/backward matches float64 to float32 resolution;
- over hundreds of learn steps on the same transition stream the Q
  predictions drift, but the drift stays within the bound documented in
  docs/PERFORMANCE.md (relative scale ~1e-3).

Also pins the workspace-reuse contract of the rewritten layers: outputs
are views of per-batch-size buffers, overwritten by the next same-shape
forward of the same network.
"""

from __future__ import annotations

import numpy as np

from repro.nn.dueling import DuelingMLP
from repro.nn.network import build_mlp
from repro.rl.agent import AgentConfig, DQNAgent

STATE_DIM = 30
N_ACTIONS = 4

#: Documented drift bound (docs/PERFORMANCE.md): after 500 learn steps
#: on identical streams, max |Q32 - Q64| / max(1, |Q64|) stays below
#: this.  Empirically ~1e-4 at test scale; the bound leaves headroom.
DRIFT_BOUND = 5e-3


def _nets(dtype):
    return build_mlp(
        STATE_DIM, (16, 16), N_ACTIONS,
        rng=np.random.default_rng(3), dtype=dtype,
    )


class TestSeededEquivalence:
    def test_same_seed_same_initial_weights(self):
        n32, n64 = _nets(np.float32), _nets(np.float64)
        for p32, p64 in zip(n32.params(), n64.params()):
            assert p32.dtype == np.float32
            assert p64.dtype == np.float64
            # f32 weights are exact casts of the same f64 draws.
            np.testing.assert_array_equal(
                p32, p64.astype(np.float32)
            )

    def test_single_forward_matches(self):
        n32, n64 = _nets(np.float32), _nets(np.float64)
        x = np.random.default_rng(4).standard_normal((8, STATE_DIM))
        y32 = n32.predict(x)
        y64 = n64.predict(x)
        assert y32.dtype == np.float32
        assert y64.dtype == np.float64
        np.testing.assert_allclose(y32, y64, rtol=1e-5, atol=1e-5)

    def test_single_backward_matches(self):
        n32, n64 = _nets(np.float32), _nets(np.float64)
        rng = np.random.default_rng(5)
        x = rng.standard_normal((8, STATE_DIM))
        g = rng.standard_normal((8, N_ACTIONS))
        for net in (n32, n64):
            net.zero_grad()
            net.forward(x, train=True)
            net.backward(g)
        for g32, g64 in zip(n32.grads(), n64.grads()):
            np.testing.assert_allclose(g32, g64, rtol=1e-4, atol=1e-5)

    def test_dueling_same_seed_same_weights(self):
        d32 = DuelingMLP(
            STATE_DIM, (16,), N_ACTIONS,
            rng=np.random.default_rng(6), dtype=np.float32,
        )
        d64 = DuelingMLP(
            STATE_DIM, (16,), N_ACTIONS,
            rng=np.random.default_rng(6), dtype=np.float64,
        )
        for p32, p64 in zip(d32.params(), d64.params()):
            np.testing.assert_array_equal(p32, p64.astype(np.float32))


class TestSkipInputGrad:
    def test_param_grads_identical_and_returns_none(self):
        # The learner's backward skips the first layer's input-grad
        # matmul; parameter gradients must be untouched by the skip.
        rng = np.random.default_rng(11)
        x = rng.standard_normal((8, STATE_DIM))
        g = rng.standard_normal((8, N_ACTIONS))
        full, skip = _nets(np.float32), _nets(np.float32)
        for net in (full, skip):
            net.zero_grad()
            net.forward(x, train=True)
        gin = full.backward(g)
        assert gin is not None and gin.shape == (8, STATE_DIM)
        assert skip.backward(g, need_input_grad=False) is None
        for gf, gs in zip(full.grads(), skip.grads()):
            np.testing.assert_array_equal(gf, gs)

    def test_dueling_skip_matches_full(self):
        rng = np.random.default_rng(12)
        x = rng.standard_normal((4, STATE_DIM))
        g = rng.standard_normal((4, N_ACTIONS))
        nets = [
            DuelingMLP(
                STATE_DIM, (16,), N_ACTIONS,
                rng=np.random.default_rng(2), dtype=np.float32,
            )
            for _ in range(2)
        ]
        for net in nets:
            net.zero_grad()
            net.forward(x, train=True)
        nets[0].backward(g)
        assert nets[1].backward(g, need_input_grad=False) is None
        for gf, gs in zip(nets[0].grads(), nets[1].grads()):
            np.testing.assert_array_equal(gf, gs)


class TestWorkspaceContract:
    def test_forward_reuses_buffer_per_batch_size(self):
        net = _nets(np.float32)
        x = np.random.default_rng(7).standard_normal((8, STATE_DIM))
        out1 = net.predict(x)
        out2 = net.predict(x)
        # Same buffer object, stable values for identical input.
        assert out1 is out2
        held = out1.copy()
        np.testing.assert_array_equal(net.predict(x), held)

    def test_different_batch_sizes_use_distinct_buffers(self):
        net = _nets(np.float32)
        rng = np.random.default_rng(8)
        a = net.predict(rng.standard_normal((4, STATE_DIM)))
        b = net.predict(rng.standard_normal((6, STATE_DIM)))
        assert a.shape[0] == 4 and b.shape[0] == 6
        assert a is not b

    def test_second_forward_overwrites_first_view(self):
        # The documented hazard: holding an output across a same-shape
        # forward of the same network sees the new values.
        net = _nets(np.float32)
        rng = np.random.default_rng(9)
        x1 = rng.standard_normal((4, STATE_DIM))
        x2 = rng.standard_normal((4, STATE_DIM))
        out = net.predict(x1)
        expected_second = net.predict(x2).copy()
        out_again = net.predict(x2)
        np.testing.assert_array_equal(out, out_again)
        np.testing.assert_array_equal(out, expected_second)


def _stream_agent(dtype_str, steps=520):
    """Train an agent on a fixed synthetic stream; return it."""
    cfg = AgentConfig(
        state_dim=STATE_DIM,
        n_actions=N_ACTIONS,
        hidden_sizes=(16, 16),
        minibatch_size=8,
        replay_capacity=256,
        learning_rate=1e-3,
        dtype=dtype_str,
        seed=13,
    )
    agent = DQNAgent(cfg)
    rng = np.random.default_rng(99)
    state = rng.standard_normal(STATE_DIM)
    losses = []
    for t in range(steps):
        nxt = rng.standard_normal(STATE_DIM)
        agent.remember(
            state, int(rng.integers(N_ACTIONS)),
            float(np.tanh(rng.normal())), nxt, t % 40 == 39,
        )
        state = (
            rng.standard_normal(STATE_DIM) if t % 40 == 39 else nxt
        )
        if agent.can_learn():
            losses.append(agent.learn().loss)
        if t % 100 == 99:
            agent.sync_target()
    return agent, losses


class TestF32VsF64Drift:
    def test_drift_bounded_over_500_learn_steps(self):
        a32, losses32 = _stream_agent("float32")
        a64, losses64 = _stream_agent("float64")
        assert len(losses32) >= 500
        assert len(losses32) == len(losses64)

        probe = np.random.default_rng(123).standard_normal(
            (64, STATE_DIM)
        )
        q32 = a32.predict_q(probe).astype(np.float64)
        q64 = a64.predict_q(probe)
        scale = max(1.0, float(np.abs(q64).max()))
        drift = float(np.abs(q32 - q64).max()) / scale
        assert drift < DRIFT_BOUND, f"relative Q drift {drift:.2e}"

    def test_losses_track_closely(self):
        _, losses32 = _stream_agent("float32", steps=260)
        _, losses64 = _stream_agent("float64", steps=260)
        diffs = np.abs(np.asarray(losses32) - np.asarray(losses64))
        scale = 1.0 + np.abs(np.asarray(losses64))
        assert float((diffs / scale).max()) < DRIFT_BOUND
