"""Layers and networks: forward semantics + analytic-vs-numeric gradients."""

import numpy as np
import pytest

from repro.nn.dueling import DuelingHead, DuelingMLP
from repro.nn.gradcheck import check_gradients, numerical_gradient
from repro.nn.init import glorot_init, he_init
from repro.nn.layers import Dense, Identity, ReLU, Sigmoid, Tanh
from repro.nn.losses import HuberLoss, MSELoss
from repro.nn.network import MLP, build_mlp


class TestInit:
    def test_he_scale(self):
        w = he_init(1000, 50, rng=0)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 1000), rel=0.1)

    def test_glorot_bounds(self):
        w = glorot_init(100, 100, rng=0)
        limit = np.sqrt(6.0 / 200)
        assert (np.abs(w) <= limit).all()

    def test_deterministic(self):
        np.testing.assert_array_equal(he_init(10, 5, rng=3), he_init(10, 5, rng=3))


class TestDense:
    def test_forward_affine(self, rng):
        d = Dense(3, 2, rng=0)
        x = rng.normal(size=(4, 3))
        np.testing.assert_allclose(d.forward(x), x @ d.w + d.b)

    def test_backward_before_forward_rejected(self):
        d = Dense(2, 2, rng=0)
        with pytest.raises(RuntimeError):
            d.backward(np.zeros((1, 2)))

    def test_grad_accumulates(self, rng):
        d = Dense(3, 2, rng=0)
        x = rng.normal(size=(4, 3))
        g = rng.normal(size=(4, 2))
        d.forward(x)
        d.backward(g)
        first = d.dw.copy()
        d.forward(x)
        d.backward(g)
        np.testing.assert_allclose(d.dw, 2 * first)
        d.zero_grad()
        assert (d.dw == 0).all() and (d.db == 0).all()

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Dense(0, 3)
        with pytest.raises(ValueError):
            Dense(3, 3, init="magic")


class TestActivations:
    @pytest.mark.parametrize("cls", [ReLU, Tanh, Sigmoid, Identity])
    def test_backward_gradcheck(self, cls, rng):
        layer = cls()
        # avoid the ReLU kink: keep |x| away from 0
        x = rng.normal(size=(3, 4))
        x = np.where(np.abs(x) < 0.1, 0.5, x)
        g_out = rng.normal(size=(3, 4))
        y = layer.forward(x, train=True)
        analytic = layer.backward(g_out)

        def f():
            return float((layer.forward(x_var, train=False) * g_out).sum())

        x_var = x.copy()
        num = numerical_gradient(f, x_var)
        np.testing.assert_allclose(analytic, num, rtol=1e-5, atol=1e-7)

    def test_relu_clamps(self):
        out = ReLU().forward(np.array([[-1.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 2.0]])

    def test_sigmoid_stable_at_extremes(self):
        out = Sigmoid().forward(np.array([[-1000.0, 1000.0]]))
        assert np.isfinite(out).all()
        assert out[0, 0] == pytest.approx(0.0, abs=1e-12)
        assert out[0, 1] == pytest.approx(1.0, abs=1e-12)


class TestMLP:
    def test_gradcheck_relu_mse(self):
        # Seed chosen so no hidden pre-activation sits on the ReLU kink
        # (finite differences are invalid exactly at the kink).
        gen = np.random.default_rng(0)
        net = build_mlp(5, (8, 6), 3, rng=0)
        x = gen.normal(size=(4, 5))
        t = gen.normal(size=(4, 3))
        worst = check_gradients(net, x, MSELoss(), t)
        assert worst < 1e-4

    def test_gradcheck_tanh_huber(self, rng):
        net = build_mlp(4, (7,), 2, activation="tanh", rng=1)
        x = rng.normal(size=(3, 4))
        t = rng.normal(size=(3, 2)) * 3  # exercise the linear branch
        check_gradients(net, x, HuberLoss(0.5), t)

    def test_single_sample_squeeze(self, rng):
        net = build_mlp(4, (6,), 2, rng=2)
        x = rng.normal(size=4)
        out = net.predict(x)
        assert out.shape == (2,)
        batch_out = net.predict(x[None, :])
        np.testing.assert_allclose(out, batch_out[0])

    def test_parameter_count(self):
        net = build_mlp(10, (5, 5), 3, rng=0)
        expected = (10 * 5 + 5) + (5 * 5 + 5) + (5 * 3 + 3)
        assert net.n_parameters() == expected

    def test_clone_independent(self, rng):
        net = build_mlp(3, (4,), 2, rng=0)
        twin = net.clone()
        x = rng.normal(size=(2, 3))
        np.testing.assert_allclose(net.predict(x), twin.predict(x))
        net.params()[0][0, 0] += 1.0
        assert not np.allclose(net.predict(x), twin.predict(x))

    def test_copy_weights_from(self, rng):
        a = build_mlp(3, (4,), 2, rng=0)
        b = build_mlp(3, (4,), 2, rng=9)
        x = rng.normal(size=(2, 3))
        assert not np.allclose(a.predict(x), b.predict(x))
        b.copy_weights_from(a)
        np.testing.assert_allclose(a.predict(x), b.predict(x))

    def test_copy_weights_architecture_mismatch(self):
        a = build_mlp(3, (4,), 2, rng=0)
        b = build_mlp(3, (5,), 2, rng=0)
        with pytest.raises(ValueError):
            b.copy_weights_from(a)

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            build_mlp(3, (4,), 2, activation="swish")

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            MLP([])

    def test_table1_network_shape(self):
        # The paper's architecture at full scale.
        net = build_mlp(16599, (135, 135), 12, rng=0)
        out = net.predict(np.zeros(16599))
        assert out.shape == (12,)


class TestDueling:
    def test_mean_centered_aggregation(self, rng):
        head = DuelingHead(6, 4, rng=0)
        x = rng.normal(size=(3, 6))
        q = head.forward(x, train=False)
        v = head.value.forward(x, train=False)
        a = head.advantage.forward(x, train=False)
        np.testing.assert_allclose(q, v + a - a.mean(axis=1, keepdims=True))

    def test_gradcheck(self, rng):
        net = DuelingMLP(5, (7,), 3, rng=0)
        x = rng.normal(size=(4, 5))
        t = rng.normal(size=(4, 3))
        check_gradients(net, x, MSELoss(), t)

    def test_param_lists_aligned(self):
        head = DuelingHead(4, 3, rng=0)
        assert len(head.params()) == len(head.grads()) == 4
