"""Bench: scorer-method ablation (exact vs cutoff vs grid).

The engine's speed/accuracy dial, quantified: per-pose latency and
score error of each method against the exact Eq. 1 evaluation -- the CPU
analogue of METADOCK's windowed-GPU evaluation choices.
"""

import numpy as np
import pytest

from repro.scoring.scorers import CutoffScorer, ExactScorer, GridScorer


@pytest.fixture(scope="module")
def scorer_setup(bench_complex):
    lig = bench_complex.ligand_crystal
    template = lig.with_coords(lig.coords - lig.centroid())
    return bench_complex.receptor, template, lig.coords


def test_bench_exact_scorer(benchmark, scorer_setup):
    rec, template, coords = scorer_setup
    scorer = ExactScorer(rec, template)
    s = benchmark(scorer.score, coords)
    assert np.isfinite(s)


def test_bench_cutoff_scorer(benchmark, scorer_setup):
    rec, template, coords = scorer_setup
    scorer = CutoffScorer(rec, template, cutoff=12.0)
    s = benchmark(scorer.score, coords)
    assert np.isfinite(s)


def test_bench_grid_scorer(benchmark, scorer_setup):
    rec, template, coords = scorer_setup
    scorer = GridScorer(rec, template, spacing=1.0)
    s = benchmark(scorer.score, coords)
    assert np.isfinite(s)


def test_scorer_accuracy_ladder(scorer_setup):
    """Shifted-cutoff error shrinks with radius; grid error is bounded."""
    rec, template, coords = scorer_setup
    exact = ExactScorer(rec, template).score(coords)
    rows = []
    for cutoff in (12.0, 16.0, 20.0):
        s = CutoffScorer(rec, template, cutoff=cutoff).score(coords)
        rows.append((f"cutoff {cutoff:.0f} A", s, abs(s - exact)))
    g = GridScorer(rec, template, spacing=1.0).score(coords)
    rows.append(("grid 1.0 A", g, abs(g - exact)))
    print(f"\nexact score: {exact:.3f}")
    for name, s, err in rows:
        print(f"  {name:<14} score {s:10.3f}   |err| {err:8.3f}")
    errs = [r[2] for r in rows[:3]]
    assert errs[2] <= errs[1] <= errs[0]
    assert errs[2] < 0.05 * max(abs(exact), 1.0)
