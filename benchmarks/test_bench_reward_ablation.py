"""Bench: reward-scheme ablation (Section 3's reward design probed).

The paper fixes reward = sign(score change).  This bench trains
identical agents under alternative schemes and checks the informative
ordering: the potential-shaped oracle (which leaks the crystal distance)
must dock essentially perfectly, quantifying how much headroom the
paper's reward leaves on the table.
"""

import numpy as np
import pytest

from repro.config import ci_scale_config
from repro.experiments.reward_ablation import run_reward_ablation

ABLATION_CFG = ci_scale_config(episodes=30, seed=0, learning_rate=0.002)


@pytest.fixture(scope="module")
def ablation():
    return run_reward_ablation(ABLATION_CFG)


def test_bench_reward_ablation(benchmark):
    result = benchmark.pedantic(
        run_reward_ablation,
        args=(ci_scale_config(episodes=10, seed=0, learning_rate=0.002),),
        kwargs={"schemes": ("sign", "potential")},
        rounds=1,
        iterations=1,
    )
    assert set(result.histories) == {"sign", "potential"}


def test_all_schemes_produce_finite_outcomes(ablation):
    print("\n" + ablation.summary())
    for name, h in ablation.histories.items():
        assert np.isfinite(h.best_score), name
        assert np.isfinite(np.nanmin(h.rmsd_series())), name


def test_potential_oracle_docks_precisely(ablation):
    """With the crystal distance leaked into the reward, the agent must
    approach the crystallographic pose closely (pinned seed)."""
    pot = ablation.histories["potential"]
    sign = ablation.histories["sign"]
    pot_rmsd = float(np.nanmin(pot.rmsd_series()))
    sign_rmsd = float(np.nanmin(sign.rmsd_series()))
    print(f"\nmin RMSD: potential={pot_rmsd:.2f} sign={sign_rmsd:.2f}")
    assert pot_rmsd < 1.0
    assert pot_rmsd <= sign_rmsd


def test_sign_scheme_still_learns(ablation):
    """The paper's scheme must reach positive scores (it does learn)."""
    assert ablation.histories["sign"].best_score > 0
