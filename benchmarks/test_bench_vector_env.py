"""Bench: sync vs async VectorEnv stepping throughput.

The tentpole claim of the async backend is that N docking environments
stepped in N worker processes beat the serial in-process loop once
more than one core is available (the paper's Section 5 serial-stepping
limitation).  This smoke measures raw ``venv.step`` throughput for
both backends over identical environments and writes a
``BENCH_vector_env.json`` artifact (consumed by the CI job) with the
measured steps/second and speedup.

The speedup claim assumes one core per worker.  On runners with fewer
cores than environments the workers time-share cores and the async
backend can legitimately lose to sync without any code regression, so
the artifact records ``cpu_count`` and a ``core_starved`` flag
(``cpu_count < n_envs``) and the assertion only runs on machines with
enough cores -- a core-starved result is informational, never a
failure (the CI job reads the flag the same way).
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import time
from pathlib import Path

import pytest

from repro.env.docking_env import DockingEnv
from repro.env.factory import make_vector_env
from repro.metadock.engine import MetadockEngine

#: Where the throughput artifact lands (repo root under plain pytest;
#: override with BENCH_VECTOR_ENV_JSON).
ARTIFACT = Path(
    os.environ.get("BENCH_VECTOR_ENV_JSON", "BENCH_vector_env.json")
)

N_ENVS = 4
N_STEPS = 60


def _measure(venv, n_steps: int) -> float:
    """Steps/second of round-robin stepping (no agent in the loop)."""
    venv.reset()
    actions = [[a % venv.n_actions] * venv.n_envs for a in range(n_steps)]
    t0 = time.perf_counter()
    for a in actions:
        venv.step(a)
    wall = time.perf_counter() - t0
    return n_steps * venv.n_envs / max(wall, 1e-9)


def test_bench_sync_vs_async_throughput(bench_complex):
    if "fork" not in mp.get_all_start_methods():
        pytest.skip("async backend needs a fork-capable platform")

    def env_fns(mode):
        return [
            (
                lambda: DockingEnv(
                    MetadockEngine(
                        bench_complex, shift_length=1.0,
                        rotation_angle_deg=2.0,
                    ),
                    observation_mode=mode,
                )
            )
        ] * N_ENVS

    # Both observation codecs: "raw" is the paper-shaped flat coordinate
    # vector, "descriptor" the ~60x-smaller pocket-relative feature
    # vector (docs/OBSERVATIONS.md) whose cheaper pickling shifts the
    # async backend's IPC cost.
    results = {}
    for mode in ("raw", "descriptor"):
        for backend in ("sync", "async"):
            venv = make_vector_env(env_fns=env_fns(mode), backend=backend)
            try:
                _measure(venv, 5)  # warm-up (worker spawn, caches)
                results[(mode, backend)] = _measure(venv, N_STEPS)
            finally:
                venv.close()

    cores = os.cpu_count() or 1
    payload = {
        "n_envs": N_ENVS,
        "steps_per_backend": N_STEPS * N_ENVS,
        "cpu_count": cores,
        "core_starved": cores < N_ENVS,
        # raw-mode rows keep the original flat keys.
        "sync_steps_per_second": round(results[("raw", "sync")], 2),
        "async_steps_per_second": round(results[("raw", "async")], 2),
        "speedup": round(
            results[("raw", "async")] / results[("raw", "sync")], 3
        ),
        "descriptor_sync_steps_per_second": round(
            results[("descriptor", "sync")], 2
        ),
        "descriptor_async_steps_per_second": round(
            results[("descriptor", "async")], 2
        ),
        "descriptor_speedup": round(
            results[("descriptor", "async")]
            / results[("descriptor", "sync")],
            3,
        ),
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nvector-env throughput: {payload}")

    if payload["core_starved"]:
        pytest.skip(
            f"core-starved ({cores} cores < {N_ENVS} envs): async vs "
            "sync is not a regression signal here; artifact written "
            "with core_starved=true"
        )
    assert results[("raw", "async")] >= results[("raw", "sync")], payload
    assert (
        results[("descriptor", "async")] >= results[("descriptor", "sync")]
    ), payload
