"""Bench: DQN act/learn throughput and replay footprint at paper shape.

The compact-state + float32 tentpole claims (docs/PERFORMANCE.md):

1. the paper-scale replay footprint drops from ~53 GB dense-float32
   (unusable) to under 2 GB compact;
2. the learn step -- replay sample + double forward + backward +
   optimizer -- runs at least 3x faster than the pre-change
   dense-float64 path at the paper's Table-1 shape (state_dim 16,599,
   batch 32, two 135-wide hidden layers).

The legacy baseline below replicates the original implementation's
behaviour faithfully: dense storage sampled by allocating fancy
indexing, every forward cast to float64, fresh output/gradient arrays
per layer per step, and an RMSprop update built from temporaries.  The
new path is simply ``DQNAgent.learn()`` in compact-float32 mode.

Writes a ``BENCH_train_step.json`` artifact (consumed by the CI
``train-bench`` job and rendered by ``repro inspect``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.rl.agent import AgentConfig, DQNAgent
from repro.rl.replay import ReplayMemory

#: Where the throughput artifact lands (repo root under plain pytest;
#: override with BENCH_TRAIN_STEP_JSON).
ARTIFACT = Path(
    os.environ.get("BENCH_TRAIN_STEP_JSON", "BENCH_train_step.json")
)

#: Paper Table-1 shape.
STATE_DIM = 16599
TAIL_DIM = 267  # 45 ligand atoms x 3 + 44 bond vectors x 3
BATCH = 32
HIDDEN = (135, 135)
N_ACTIONS = 12
PAPER_CAPACITY = 400_000

#: Bench-loop sizing (small ring so the loop fits in cache-warm memory;
#: the footprint claims are measured on separately constructed rings).
LOOP_CAPACITY = 2048
WARMUP = 3
LEARN_ITERS = 25
PUSH_ITERS = 2000
SAMPLE_ITERS = 200
ACT_ITERS = 200


# -- legacy dense-float64 path (pre-change implementation, replicated) --

def _legacy_init(rng):
    """Weights matching the old float64 MLP (LeCun-uniform-ish init)."""
    sizes = (STATE_DIM,) + HIDDEN + (N_ACTIONS,)
    ws = [
        rng.normal(0.0, np.sqrt(2.0 / d_in), size=(d_in, d_out))
        for d_in, d_out in zip(sizes[:-1], sizes[1:])
    ]
    bs = [np.zeros(d_out) for d_out in sizes[1:]]
    return ws, bs


def _legacy_forward(ws, bs, x):
    """Old forward: float64 cast + a fresh array per layer."""
    h = np.asarray(x, dtype=np.float64)
    acts = [h]
    last = len(ws) - 1
    for i, (w, b) in enumerate(zip(ws, bs)):
        h = h @ w + b
        if i < last:
            h = np.maximum(h, 0.0)
        acts.append(h)
    return acts


def _legacy_learn_step(ws, bs, tws, tbs, opt_state, mem, rng, gamma=0.99):
    """One pre-change learn step: allocating sample, float64 math,
    fresh gradient arrays, temporary-laden RMSprop."""
    idx = rng.integers(0, len(mem), size=BATCH)
    states = mem._states[idx]  # fancy indexing: fresh copies
    next_states = mem._next_states[idx]
    actions = mem._actions[idx]
    rewards = mem._rewards[idx]
    terminals = mem._terminals[idx]

    q_next = _legacy_forward(tws, tbs, next_states)[-1]
    targets = rewards + gamma * q_next.max(axis=1) * (~terminals)

    acts = _legacy_forward(ws, bs, states)
    preds = acts[-1]
    rows = np.arange(BATCH)
    grad_out = np.zeros_like(preds)
    grad_out[rows, actions] = (
        2.0 * (preds[rows, actions] - targets) / BATCH
    )

    # Backward with a fresh array per intermediate (as the old layers
    # -- which computed the input gradient at *every* layer, including
    # the never-consumed (batch, state_dim) one at the first).
    g = grad_out
    grads_w, grads_b = [], []
    for i in range(len(ws) - 1, -1, -1):
        grads_w.append(acts[i].T @ g)
        grads_b.append(g.sum(axis=0))
        g = g @ ws[i].T
        if i > 0:
            g = g * (acts[i] > 0.0)
    grads_w.reverse()
    grads_b.reverse()

    # Old RMSprop: every term a new temporary.
    lr, rho, eps = 0.00025, 0.99, 1e-8
    for p, grad, s in zip(
        ws + bs, grads_w + grads_b, opt_state
    ):
        s[:] = rho * s + (1.0 - rho) * grad * grad
        p -= lr * grad / (np.sqrt(s) + eps)


def _fill_dense_f64(mem, rng):
    """Populate a dense ring with random transitions."""
    for _ in range(LOOP_CAPACITY):
        s = rng.standard_normal(STATE_DIM)
        ns = rng.standard_normal(STATE_DIM)
        mem.push(s, int(rng.integers(N_ACTIONS)), 1.0, ns, False)


def _new_agent(static):
    cfg = AgentConfig(
        state_dim=STATE_DIM,
        n_actions=N_ACTIONS,
        hidden_sizes=HIDDEN,
        minibatch_size=BATCH,
        replay_capacity=LOOP_CAPACITY,
        dtype="float32",
        seed=7,
    )
    return DQNAgent(cfg, static_state=static)


def _fill_compact(agent, rng):
    """Populate the agent's compact ring with a synthetic trajectory."""
    tail = rng.standard_normal(TAIL_DIM).astype(np.float32)
    for t in range(LOOP_CAPACITY):
        nxt = rng.standard_normal(TAIL_DIM).astype(np.float32)
        agent.remember(
            tail, int(rng.integers(N_ACTIONS)), 1.0, nxt,
            t % 200 == 199,
        )
        tail = nxt


def _rate(fn, iters, warmup=WARMUP, repeats=1):
    """Best-of-``repeats`` throughput in steps per CPU-second.

    CPU time (``time.process_time``), not wall time: shared/throttled
    CI runners stall benchmark windows unpredictably, and every path
    measured here is pure single-process compute.  Best-of-``repeats``
    further dampens residual noise.
    """
    for _ in range(warmup):
        fn()
    best = 0.0
    for _ in range(repeats):
        t0 = time.process_time()
        for _ in range(iters):
            fn()
        best = max(best, iters / max(time.process_time() - t0, 1e-9))
    return best


def test_bench_train_step_throughput():
    rng = np.random.default_rng(2018)
    static = rng.standard_normal(STATE_DIM - TAIL_DIM).astype(np.float32)

    # -- legacy baseline: dense float64 ring + float64 allocating math.
    legacy_mem = ReplayMemory(
        LOOP_CAPACITY, STATE_DIM, seed=1, dtype=np.float64
    )
    _fill_dense_f64(legacy_mem, rng)
    ws, bs = _legacy_init(np.random.default_rng(7))
    tws = [w.copy() for w in ws]
    tbs = [b.copy() for b in bs]
    opt_state = [np.zeros_like(p) for p in ws + bs]
    sample_rng = np.random.default_rng(3)
    def legacy_step():
        _legacy_learn_step(
            ws, bs, tws, tbs, opt_state, legacy_mem, sample_rng
        )

    # -- new path: compact float32 ring + allocation-free learn.
    agent = _new_agent(static)
    _fill_compact(agent, rng)

    # Interleave legacy/compact reps so ambient load lands on both
    # sides of each ratio; assert on the best *paired* ratio (shared
    # CI runners routinely carry background load).
    for _ in range(WARMUP):
        legacy_step()
        agent.learn()
    legacy_rates, compact_rates = [], []
    for _ in range(4):
        legacy_rates.append(_rate(legacy_step, LEARN_ITERS, warmup=0))
        compact_rates.append(_rate(agent.learn, LEARN_ITERS, warmup=0))
    legacy_learn_rate = max(legacy_rates)
    compact_learn_rate = max(compact_rates)
    paired_speedup = max(
        c / max(l, 1e-9)
        for c, l in zip(compact_rates, legacy_rates)
    )

    # -- act throughput on bare dynamic tails (the hot acting path).
    tail = rng.standard_normal(TAIL_DIM).astype(np.float32)
    act_rate = _rate(lambda: agent.act(tail, 10**6), ACT_ITERS)

    # -- replay push/sample rates at paper shape (compact ring).
    push_mem = ReplayMemory(
        LOOP_CAPACITY, STATE_DIM, seed=2, static_prefix=static
    )
    tails = rng.standard_normal((PUSH_ITERS + 1, TAIL_DIM)).astype(
        np.float32
    )
    counter = iter(range(PUSH_ITERS * 10))

    def one_push():
        t = next(counter)
        push_mem.push(tails[t % PUSH_ITERS], 1, 1.0,
                      tails[t % PUSH_ITERS + 1], False)

    push_rate = _rate(one_push, PUSH_ITERS)
    sample_rate = _rate(
        lambda: push_mem.sample(BATCH), SAMPLE_ITERS
    )

    # -- footprint at the paper's full 400k capacity (np.zeros is lazy,
    # so constructing the compact ring costs no real memory here).
    compact_full = ReplayMemory(
        PAPER_CAPACITY, STATE_DIM, static_prefix=static
    )
    compact_bytes = compact_full.nbytes()
    dense_f32_bytes = 2 * PAPER_CAPACITY * STATE_DIM * 4

    speedup = paired_speedup
    payload = {
        "state_dim": STATE_DIM,
        "tail_dim": TAIL_DIM,
        "batch_size": BATCH,
        "hidden_sizes": list(HIDDEN),
        "legacy_f64_learn_steps_per_second": round(legacy_learn_rate, 2),
        "compact_f32_learn_steps_per_second": round(
            compact_learn_rate, 2
        ),
        "learn_speedup": round(speedup, 3),
        "act_steps_per_second": round(act_rate, 1),
        "replay_push_per_second": round(push_rate, 1),
        "replay_sample_per_second": round(sample_rate, 1),
        "replay_capacity": PAPER_CAPACITY,
        "replay_bytes_compact": int(compact_bytes),
        "replay_bytes_dense_float32": int(dense_f32_bytes),
        "replay_compression": round(dense_f32_bytes / compact_bytes, 1),
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\ntrain-step throughput: {payload}")

    # Acceptance: compact ring under 2 GB at full paper capacity...
    assert compact_bytes < 2 * 1024**3, payload
    # ...and at least 3x learn-step throughput over the legacy path.
    assert speedup >= 3.0, payload
