"""Bench: Figure 2 -- the DQN <-> METADOCK interaction loop.

Measures the full s -> a -> r -> s' cycle (agent forward pass, engine
move + score, reward/termination rules) and quantifies the paper's
limitation #1: RAM vs on-disk file communication.
"""

import numpy as np
import pytest

from repro.env.comm import FileComm, RamComm
from repro.env.docking_env import DockingEnv
from repro.metadock.engine import MetadockEngine
from repro.rl.agent import AgentConfig, DQNAgent


def _make_env_agent(built, comm):
    engine = MetadockEngine(built, shift_length=1.0, rotation_angle_deg=2.0)
    env = DockingEnv(engine, comm=comm)
    agent = DQNAgent(
        AgentConfig(
            state_dim=env.state_dim,
            n_actions=env.n_actions,
            hidden_sizes=(60, 60),
            replay_capacity=4096,
            minibatch_size=32,
            initial_exploration_steps=0,
            epsilon_decay=1e-3,
            seed=0,
        )
    )
    return env, agent


def _loop(env, agent, steps: int) -> int:
    state = env.reset()
    done_count = 0
    for t in range(steps):
        action, _q = agent.act(state, t)
        next_state, reward, done, _info = env.step(action)
        agent.remember(state, action, reward, next_state, done)
        state = next_state
        if done:
            done_count += 1
            state = env.reset()
    return done_count


def test_bench_interaction_loop_ram(benchmark, bench_complex):
    env, agent = _make_env_agent(bench_complex, RamComm())
    try:
        benchmark.pedantic(
            _loop, args=(env, agent, 100), rounds=3, iterations=1
        )
    finally:
        env.close()


def test_bench_interaction_loop_file(benchmark, bench_complex):
    """The paper's actual setup: every step round-trips through disk."""
    env, agent = _make_env_agent(bench_complex, FileComm())
    try:
        benchmark.pedantic(
            _loop, args=(env, agent, 100), rounds=3, iterations=1
        )
    finally:
        env.close()


def test_bench_learning_step(benchmark, bench_complex):
    """One Algorithm 2 gradient step at bench-scale state width."""
    env, agent = _make_env_agent(bench_complex, RamComm())
    try:
        _loop(env, agent, 64)  # fill replay
        info = benchmark(agent.learn)
        assert np.isfinite(info.loss)
    finally:
        env.close()


def test_file_comm_overhead_is_real(bench_complex):
    """RAM must beat file comm; report the ratio the paper implies."""
    import time

    ram_env, ram_agent = _make_env_agent(bench_complex, RamComm())
    file_env, file_agent = _make_env_agent(bench_complex, FileComm())
    try:
        _loop(ram_env, ram_agent, 10)  # warm
        t0 = time.perf_counter()
        _loop(ram_env, ram_agent, 150)
        t_ram = time.perf_counter() - t0
        _loop(file_env, file_agent, 10)
        t0 = time.perf_counter()
        _loop(file_env, file_agent, 150)
        t_file = time.perf_counter() - t0
        print(
            f"\nram: {150 / t_ram:.1f} steps/s   "
            f"file: {150 / t_file:.1f} steps/s   "
            f"overhead: {100 * (t_file - t_ram) / t_ram:.1f}%"
        )
        assert t_file > t_ram
    finally:
        ram_env.close()
        file_env.close()
