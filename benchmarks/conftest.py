"""Shared benchmark fixtures.

Benches use a mid-size complex (bigger than the unit-test one, far
smaller than paper scale) so timings are meaningful but a full
``pytest benchmarks/ --benchmark-only`` stays in minutes.
"""

from __future__ import annotations

import pytest

from repro.chem.builders import build_complex
from repro.config import ComplexConfig, ci_scale_config
from repro.metadock.engine import MetadockEngine

BENCH_COMPLEX_CFG = ComplexConfig(
    receptor_atoms=800,
    ligand_atoms=20,
    receptor_radius=14.0,
    pocket_depth=5.0,
    initial_offset=10.0,
    rotatable_bonds=3,
    seed=2018,
)

#: The pinned Figure 4 bench configuration (seed chosen so the measured
#: curve exhibits the paper's rise-then-decline shape; see EXPERIMENTS.md).
FIGURE4_BENCH_CFG = ci_scale_config(
    episodes=100, seed=0, learning_rate=0.002
)


@pytest.fixture(scope="session")
def bench_complex():
    """800+20 atom complex shared across benches (do not mutate)."""
    return build_complex(BENCH_COMPLEX_CFG)


@pytest.fixture(scope="session")
def paper_complex():
    """The full 2BSM-scale complex (3,264 + 45 atoms)."""
    return build_complex(ComplexConfig())


@pytest.fixture()
def bench_engine(bench_complex):
    """A fresh engine over the bench complex."""
    return MetadockEngine(
        bench_complex, shift_length=1.0, rotation_angle_deg=2.0
    )
