"""Bench: Section 4's framing -- DQN vs Monte Carlo vs metaheuristics.

The paper's stated success criterion is matching "state-of-the-art Monte
Carlo optimization"; its honest Section 4/5 result is that DQN-Docking is
*not there yet*.  This bench reproduces both halves: classical optimizers
reach near-crystal scores under a fixed evaluation budget, and the
early-stage DQN trails them -- the expected ordering, asserted.
"""

import pytest

from repro.config import ci_scale_config
from repro.experiments.baselines import run_baseline_comparison

BASELINE_CFG = ci_scale_config(episodes=40, seed=0, learning_rate=0.002)


@pytest.fixture(scope="module")
def comparison():
    return run_baseline_comparison(
        BASELINE_CFG,
        budget=1200,
        strategies=("montecarlo", "local", "scatter", "ga"),
    )


def test_bench_full_comparison(benchmark):
    result = benchmark.pedantic(
        run_baseline_comparison,
        args=(BASELINE_CFG,),
        kwargs={"budget": 600, "strategies": ("montecarlo", "local")},
        rounds=1,
        iterations=1,
    )
    assert len(result.results) == 3


def test_classical_optimizers_near_crystal(comparison):
    """MC and local search must reach a large fraction of the crystal
    score under the budget (the paper's 'state of the art' bar)."""
    print("\n" + comparison.summary())
    for name in ("montecarlo", "metaheuristic-local"):
        r = comparison.result_for(name)
        assert r.best_score > 0.5 * comparison.crystal_score, name


def test_dqn_is_early_stage(comparison):
    """The paper's honest result: the DQN does not yet beat the best
    classical optimizer under an equal budget."""
    dqn = comparison.result_for("dqn-docking")
    best_classical = max(
        r.best_score
        for r in comparison.results
        if r.method != "dqn-docking"
    )
    print(
        f"\ndqn={dqn.best_score:.1f}  best classical={best_classical:.1f}"
    )
    assert dqn.best_score <= best_classical * 1.1  # allow near-ties


def test_dqn_better_than_nothing(comparison):
    """The agent must still find positive-score poses (it learns
    *something* -- Figure 4's rising phase)."""
    dqn = comparison.result_for("dqn-docking")
    assert dqn.best_score > 0.0


def test_budgets_comparable(comparison):
    """Evaluation-fairness: no method may exceed ~2x the median budget."""
    evals = sorted(r.evaluations for r in comparison.results)
    median = evals[len(evals) // 2]
    assert evals[-1] <= 2.5 * median
