"""Bench: multi-complex curriculum vs single-complex training.

Completes the generalization story: even a 4-complex curriculum does not
yet crack held-out transfer at CI scale -- an honest negative result
consistent with the paper's early-stage framing -- while the curriculum
at least matches the single-complex regime it subsumes.
"""

import numpy as np
import pytest

from repro.config import ci_scale_config
from repro.experiments.curriculum import run_curriculum_experiment

CURRICULUM_CFG = ci_scale_config(episodes=30, seed=0, learning_rate=0.002)


@pytest.fixture(scope="module")
def curriculum():
    return run_curriculum_experiment(
        CURRICULUM_CFG, n_train_complexes=4, eval_episodes=3
    )


def test_bench_curriculum_training(benchmark):
    result = benchmark.pedantic(
        run_curriculum_experiment,
        args=(ci_scale_config(episodes=6, seed=0, max_steps=25),),
        kwargs={
            "n_train_complexes": 2,
            "total_steps": 150,
            "eval_episodes": 2,
        },
        rounds=1,
        iterations=1,
    )
    assert result.total_steps == 150


def test_curriculum_at_least_matches_single(curriculum):
    print("\n" + curriculum.summary())
    # Pinned seed: the broader curriculum must not lose to the
    # single-complex regime it strictly generalizes.
    assert (
        curriculum.curriculum_eval.mean_best_score
        >= curriculum.single_eval.mean_best_score - 1.0
    )


def test_transfer_gap_remains_open(curriculum):
    """The honest shape: no regime decisively beats the untrained floor
    on the held-out complex at this scale (within 2x)."""
    floor = curriculum.untrained_eval.mean_best_score
    for ev in (curriculum.curriculum_eval, curriculum.single_eval):
        assert ev.mean_best_score < 2.0 * max(floor, 1.0)
