"""Bench: Equation 1 / Algorithm 1 -- the scoring function.

Reproduces the paper's core computational claim: per-pose scoring is the
bottleneck and the data-parallel formulation beats the sequential loop by
orders of magnitude.  Rows produced:

- vectorized full Eq. 1 at bench scale and at 2BSM scale;
- the sequential Algorithm 1 baseline (pure Python, paper pseudocode);
- batched multi-pose scoring (the METADOCK many-positions pattern);
- grid and cell-list accelerations.
"""

import numpy as np
import pytest

from repro.scoring.composite import (
    interaction_score,
    score_pose_batch,
)
from repro.scoring.grid import PotentialGrid
from repro.scoring.neighborlist import CellList, cutoff_pairs
from repro.scoring.reference import sequential_score_algorithm1


def test_bench_vectorized_score(benchmark, bench_complex):
    s = benchmark(
        interaction_score, bench_complex.receptor, bench_complex.ligand_crystal
    )
    assert np.isfinite(s)


def test_bench_vectorized_score_2bsm_scale(benchmark, paper_complex):
    """Full 3,264 x 45 pair matrix -- the paper's per-step cost."""
    s = benchmark(
        interaction_score, paper_complex.receptor, paper_complex.ligand_crystal
    )
    assert np.isfinite(s)


def test_bench_sequential_algorithm1(benchmark, bench_complex):
    """The paper's sequential baseline (pure Python triple loop)."""
    out = benchmark.pedantic(
        sequential_score_algorithm1,
        args=(bench_complex.receptor, bench_complex.ligand_crystal),
        rounds=2,
        iterations=1,
    )
    # Parity with the vectorized path is the correctness anchor.
    vec = interaction_score(
        bench_complex.receptor, bench_complex.ligand_crystal
    )
    assert out[0] == pytest.approx(vec, rel=1e-9)


def test_vectorized_beats_sequential(bench_complex):
    """The headline speedup claim, asserted (not just reported)."""
    import time

    rec, lig = bench_complex.receptor, bench_complex.ligand_crystal
    t0 = time.perf_counter()
    sequential_score_algorithm1(rec, lig)
    t_seq = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(10):
        interaction_score(rec, lig)
    t_vec = (time.perf_counter() - t0) / 10
    speedup = t_seq / t_vec
    print(f"\nvectorized-vs-sequential speedup: {speedup:.0f}x")
    # ~36x on the reference machine; 10x is the portable floor.
    assert speedup > 10.0


def test_bench_batched_poses(benchmark, bench_complex):
    """256 poses per call -- METADOCK's many-positions evaluation."""
    rng = np.random.default_rng(0)
    lig = bench_complex.ligand_crystal
    batch = lig.coords[None] + rng.normal(scale=2.0, size=(256, 1, 3))
    scores = benchmark(
        score_pose_batch, bench_complex.receptor, lig, batch
    )
    assert scores.shape == (256,)


def test_batched_amortizes_versus_singles(bench_complex):
    """Batch evaluation must beat one-at-a-time by a clear factor."""
    import time

    rng = np.random.default_rng(1)
    lig = bench_complex.ligand_crystal
    batch = lig.coords[None] + rng.normal(scale=2.0, size=(64, 1, 3))
    t0 = time.perf_counter()
    score_pose_batch(bench_complex.receptor, lig, batch)
    t_batch = time.perf_counter() - t0
    t0 = time.perf_counter()
    for k in range(64):
        interaction_score(
            bench_complex.receptor, lig.with_coords(batch[k])
        )
    t_single = time.perf_counter() - t0
    print(f"\nbatch amortization: {t_single / t_batch:.1f}x")
    assert t_batch < t_single


def test_bench_grid_construction(benchmark, bench_complex):
    grid = benchmark.pedantic(
        PotentialGrid,
        args=(bench_complex.receptor,),
        kwargs={"spacing": 1.0},
        rounds=2,
        iterations=1,
    )
    assert grid.nbytes() > 0


def test_bench_grid_score(benchmark, bench_complex):
    """Grid lookup scoring: O(ligand) per pose after precomputation."""
    grid = PotentialGrid(bench_complex.receptor, spacing=1.0)
    s = benchmark(grid.score, bench_complex.ligand_crystal)
    exact = interaction_score(
        bench_complex.receptor, bench_complex.ligand_crystal
    )
    # Documented model error bound (geometric LJ, no H-bond term).
    assert s == pytest.approx(exact, rel=0.5)


def test_bench_cell_list_query(benchmark, bench_complex):
    cl = CellList(bench_complex.receptor.coords, cell_size=12.0)
    lig = bench_complex.ligand_crystal.coords

    def run():
        return cutoff_pairs(cl, lig, 12.0)

    stored, probes = benchmark(run)
    assert stored.size > 0
