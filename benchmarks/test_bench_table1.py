"""Bench: Table 1 -- config construction and the paper-default contract.

The quantitative reproduction of Table 1 is the assertion that every
default equals the published value; the timed section measures config +
agent construction at the paper's exact architecture (16,599 -> 135 ->
135 -> 12).
"""

import pytest

from repro.config import DQNDockingConfig, PAPER_CONFIG
from repro.experiments.table1 import render_table1, verify_paper_defaults
from repro.rl.agent import AgentConfig, DQNAgent


def test_paper_defaults_match_published_table():
    assert verify_paper_defaults(PAPER_CONFIG) == []


def test_bench_render_table1(benchmark):
    out = benchmark(render_table1)
    assert "RMSprop" in out


def test_bench_paper_architecture_construction(benchmark):
    """Building the full-scale Q-network + target + replay metadata."""

    def build():
        cfg = AgentConfig.from_run_config(
            # replay capacity reduced: allocating the paper's 400k x
            # 16,599-float store is a 50 GB benchmark of the allocator,
            # not of the architecture.
            PAPER_CONFIG.replace(replay_capacity=1000),
            state_dim=PAPER_CONFIG.state_space,
            n_actions=PAPER_CONFIG.action_space,
        )
        return DQNAgent(cfg)

    agent = benchmark.pedantic(build, rounds=3, iterations=1)
    assert agent.q_net.n_parameters() == (
        16599 * 135 + 135 + 135 * 135 + 135 + 135 * 12 + 12
    )


def test_bench_config_validation(benchmark):
    def construct():
        return DQNDockingConfig()

    cfg = benchmark(construct)
    assert cfg.episodes == 1800
