"""Bench: actor/learner runtime vs single-process sync training.

The tentpole claim of :mod:`repro.rl.distributed` is that N actor
processes feeding the learner through shared-memory rings beat the
single-process synchronous loop once the actors have cores to run on
(the env step and the learn step then overlap instead of alternating).
This smoke trains the same agent over the same transition budget on

- the single-process sync path (1-env :class:`VectorTrainer`), and
- the actor/learner runtime at 1, 2, and 4 actors,

and writes a ``BENCH_actor_learner.json`` artifact (consumed by the CI
job) with the measured steps/second and the best speedup over sync.

The speedup claim assumes one core per actor plus one for the learner.
On runners with fewer cores the processes time-share and the runtime
can legitimately lose to sync without any code regression, so the
artifact records ``cpu_count`` and a ``core_starved`` flag
(``cpu_count < max_actors + 1``) and the assertions only run on
machines with enough cores -- a core-starved result is informational,
never a failure (the CI job reads the flag the same way).
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.chem.builders import build_complex
from repro.config import ci_scale_config
from repro.env.factory import make_env, make_vector_env
from repro.experiments.figure4 import build_agent_for_env
from repro.rl.distributed import ActorLearnerTrainer
from repro.rl.vector_trainer import VectorTrainer

#: Where the throughput artifact lands (repo root under plain pytest;
#: override with BENCH_ACTOR_LEARNER_JSON).
ARTIFACT = Path(
    os.environ.get("BENCH_ACTOR_LEARNER_JSON", "BENCH_actor_learner.json")
)

ACTOR_COUNTS = (1, 2, 4)
SYNC_EVERY = 25
#: Measured transitions per configuration; a multiple of every
#: ``n * SYNC_EVERY`` so all warm-up boundaries align.
TOTAL_STEPS = 400


def _bench_config():
    return ci_scale_config(
        episodes=10,
        seed=0,
        receptor_atoms=800,
        ligand_atoms=20,
        max_steps=60,
        actor_sync_every=SYNC_EVERY,
    )


def _measure(trainer, warmup: int) -> float:
    """Steps/second of ``TOTAL_STEPS`` after a ``warmup``-step segment.

    The warm-up segment absorbs one-time costs (worker spawn, first
    weight broadcast, allocator warm-up) so the measured segment is
    steady-state throughput; ``warmup`` doubles as the aligned
    ``start_step`` of the measured segment.
    """
    trainer.run(warmup)
    t0 = time.perf_counter()
    trainer.run(warmup + TOTAL_STEPS, start_step=warmup)
    wall = time.perf_counter() - t0
    return TOTAL_STEPS / max(wall, 1e-9)


def test_bench_actor_learner_vs_sync():
    if "fork" not in mp.get_all_start_methods():
        pytest.skip("the actor/learner runtime needs a fork-capable OS")

    cfg = _bench_config()
    built = build_complex(cfg.complex)

    def env_fn():
        return make_env(cfg, built)

    results = {}
    probe = make_env(cfg, built)
    try:
        spec = getattr(probe, "observation_spec", None)
        state_dim = int(probe.state_dim)
        state_dtype = getattr(probe, "state_dtype", np.float64)

        # Single-process sync baseline: same agent geometry, same budget.
        venv = make_vector_env(cfg, builts=[built], backend="sync")
        try:
            sync_trainer = VectorTrainer(
                venv,
                build_agent_for_env(cfg, probe),
                learning_start=cfg.learning_start,
                target_update_steps=cfg.target_update_steps,
                train_interval=cfg.train_interval,
            )
            results["sync"] = _measure(sync_trainer, SYNC_EVERY)
        finally:
            venv.close()

        for n in ACTOR_COUNTS:
            trainer = ActorLearnerTrainer(
                [env_fn] * n,
                build_agent_for_env(cfg, probe),
                state_dim=state_dim,
                state_dtype=state_dtype,
                sync_every=SYNC_EVERY,
                ring_capacity=cfg.actor_ring_capacity,
                max_steps_per_episode=cfg.max_steps_per_episode,
                learning_start=cfg.learning_start,
                target_update_steps=cfg.target_update_steps,
                train_interval=cfg.train_interval,
                observation_spec=spec,
                seed=cfg.seed,
            )
            try:
                results[n] = _measure(trainer, n * SYNC_EVERY)
            finally:
                trainer.close()
    finally:
        probe.close()

    cores = os.cpu_count() or 1
    best = max(results[n] for n in ACTOR_COUNTS)
    payload = {
        "total_steps": TOTAL_STEPS,
        "sync_every": SYNC_EVERY,
        "cpu_count": cores,
        "core_starved": cores < max(ACTOR_COUNTS) + 1,
        "sync_steps_per_second": round(results["sync"], 2),
        "speedup_best": round(best / results["sync"], 3),
    }
    for n in ACTOR_COUNTS:
        payload[f"actor_learner_{n}_steps_per_second"] = round(
            results[n], 2
        )
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nactor-learner throughput: {payload}")

    if payload["core_starved"]:
        pytest.skip(
            f"core-starved ({cores} cores < {max(ACTOR_COUNTS) + 1} "
            "processes): actor-learner vs sync is not a regression "
            "signal here; artifact written with core_starved=true"
        )
    assert best >= results["sync"], payload
    assert results[2] >= results[1], payload
