"""Bench: zero-shot generalization beyond the training complex.

The paper's ultimate goal, measured: an agent trained on one complex is
evaluated on fresh complexes of the same size class, bracketed by the
untrained floor and the scratch-trained ceiling.  The expected
early-stage shape -- transfer lands far below scratch -- is asserted in
aggregate.
"""

import numpy as np
import pytest

from repro.config import ci_scale_config
from repro.experiments.generalization import run_generalization_experiment

GEN_CFG = ci_scale_config(episodes=25, seed=0, learning_rate=0.002)


@pytest.fixture(scope="module")
def generalization():
    return run_generalization_experiment(
        GEN_CFG, n_targets=2, eval_episodes=3
    )


def test_bench_generalization(benchmark):
    result = benchmark.pedantic(
        run_generalization_experiment,
        args=(ci_scale_config(episodes=8, seed=0, max_steps=30),),
        kwargs={"n_targets": 1, "eval_episodes": 2},
        rounds=1,
        iterations=1,
    )
    assert len(result.outcomes) == 1


def test_generalization_shape(generalization):
    print("\n" + generalization.summary())
    transfers = [o.transfer.mean_best_score for o in generalization.outcomes]
    scratch = [o.scratch_best_score for o in generalization.outcomes]
    # Scratch training must beat zero-shot transfer in aggregate: the
    # single-complex curriculum has nothing to generalize from.
    assert np.mean(scratch) > np.mean(transfers)


def test_source_training_succeeded(generalization):
    assert generalization.source_best_score > 0
