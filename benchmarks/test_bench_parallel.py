"""Bench: METADOCK's parallel evaluation patterns.

- spot decomposition of the receptor surface;
- batched-vectorized pose scoring vs per-pose loops (data parallelism);
- process-pool fan-out for large pose sets (task parallelism);
- the metaheuristic schema and Monte Carlo under a fixed budget;
- virtual screening of a ligand library.
"""

import numpy as np
import pytest

from repro.metadock.library import generate_library
from repro.metadock.metaheuristic import MetaheuristicSchema
from repro.metadock.montecarlo import MonteCarloConfig, MonteCarloOptimizer
from repro.metadock.parallel import score_coords_parallel
from repro.metadock.screening import screen_library
from repro.metadock.spots import surface_spots
from repro.metadock.strategies import STRATEGY_PRESETS

from benchmarks.conftest import BENCH_COMPLEX_CFG


def test_bench_surface_spots(benchmark, bench_complex):
    spots = benchmark(surface_spots, bench_complex.receptor, 16)
    assert len(spots) >= 8


def test_bench_pose_batch_1024(benchmark, bench_complex):
    rng = np.random.default_rng(0)
    lig = bench_complex.ligand_crystal
    batch = lig.coords[None] + rng.normal(scale=3.0, size=(1024, 1, 3))
    scores = benchmark.pedantic(
        score_coords_parallel,
        args=(bench_complex.receptor, lig, batch),
        kwargs={"n_workers": 1},
        rounds=3,
        iterations=1,
    )
    assert scores.shape == (1024,)


def test_bench_pose_batch_multiprocess(benchmark, bench_complex):
    rng = np.random.default_rng(0)
    lig = bench_complex.ligand_crystal
    batch = lig.coords[None] + rng.normal(scale=3.0, size=(2048, 1, 3))
    scores = benchmark.pedantic(
        score_coords_parallel,
        args=(bench_complex.receptor, lig, batch),
        kwargs={"n_workers": 4, "chunk": 256},
        rounds=2,
        iterations=1,
    )
    assert scores.shape == (2048,)


def test_parallel_matches_serial(bench_complex):
    rng = np.random.default_rng(1)
    lig = bench_complex.ligand_crystal
    batch = lig.coords[None] + rng.normal(scale=3.0, size=(600, 1, 3))
    serial = score_coords_parallel(
        bench_complex.receptor, lig, batch, n_workers=1
    )
    par = score_coords_parallel(
        bench_complex.receptor, lig, batch, n_workers=4, chunk=128
    )
    np.testing.assert_allclose(par, serial, rtol=1e-10)


@pytest.mark.parametrize("strategy", ["ga", "local", "scatter"])
def test_bench_metaheuristic_strategies(benchmark, bench_engine, strategy):
    params = STRATEGY_PRESETS[strategy](500)

    def run():
        return MetaheuristicSchema(bench_engine, params, seed=0).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.best_score > 0


def test_bench_montecarlo(benchmark, bench_engine):
    def run():
        return MonteCarloOptimizer(
            bench_engine, MonteCarloConfig(steps=500, restarts=2), seed=0
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert np.isfinite(result.best_score)


def test_bench_virtual_screening(benchmark, bench_complex):
    library = generate_library(BENCH_COMPLEX_CFG, 4, seed=0)

    def run():
        return screen_library(
            bench_complex, library, strategy="local", budget=150, seed=0
        )

    hits = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(hits) == 4
    scores = [h.best_score for h in hits]
    assert scores == sorted(scores, reverse=True)


def test_bench_vectorized_collection(benchmark, bench_complex):
    """Batched acting over N envs vs the per-env network cost."""
    from repro.env.docking_env import DockingEnv
    from repro.env.factory import make_vector_env
    from repro.metadock.engine import MetadockEngine
    from repro.rl.agent import AgentConfig, DQNAgent
    from repro.rl.vector_trainer import VectorTrainer

    def run():
        venv = make_vector_env(
            env_fns=[
                lambda: DockingEnv(
                    MetadockEngine(
                        bench_complex, shift_length=1.0, rotation_angle_deg=2.0
                    )
                )
            ]
            * 4,
            backend="sync",
        )
        try:
            agent = DQNAgent(
                AgentConfig(
                    state_dim=venv.state_dim,
                    n_actions=venv.n_actions,
                    hidden_sizes=(60, 60),
                    replay_capacity=4096,
                    minibatch_size=32,
                    initial_exploration_steps=0,
                    epsilon_decay=1e-3,
                    seed=0,
                )
            )
            return VectorTrainer(venv, agent, train_interval=4).run(
                total_steps=200
            )
        finally:
            venv.close()

    stats = benchmark.pedantic(run, rounds=2, iterations=1)
    print(f"\nvectorized collection: {stats.steps_per_second:.1f} steps/s")
    assert stats.total_steps == 200
