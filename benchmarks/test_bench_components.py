"""Bench: component-level throughput (replay, network, engine).

Not tied to one figure; these are the unit costs Section 5 reasons about
when projecting the full 1,800 x 1,000-step run.
"""

import numpy as np
import pytest

from repro.nn.losses import MSELoss
from repro.nn.network import build_mlp
from repro.nn.optimizers import RMSprop
from repro.rl.prioritized_replay import PrioritizedReplayMemory
from repro.rl.replay import ReplayMemory


@pytest.fixture(scope="module")
def filled_replay():
    mem = ReplayMemory(50000, 128, seed=0)
    rng = np.random.default_rng(0)
    states = rng.normal(size=(1000, 128)).astype(np.float32)
    for k in range(20000):
        s = states[k % 1000]
        mem.push(s, k % 12, float(k % 3 - 1), states[(k + 1) % 1000], k % 50 == 0)
    return mem


def test_bench_replay_push(benchmark):
    mem = ReplayMemory(50000, 128, seed=0)
    s = np.zeros(128, dtype=np.float32)

    def push():
        mem.push(s, 0, 1.0, s, False)

    benchmark(push)


def test_bench_replay_sample(benchmark, filled_replay):
    batch = benchmark(filled_replay.sample, 32)
    assert batch.states.shape == (32, 128)


def test_bench_prioritized_sample(benchmark):
    mem = PrioritizedReplayMemory(20000, 128, seed=0)
    rng = np.random.default_rng(1)
    s = np.zeros(128, dtype=np.float32)
    for k in range(10000):
        mem.push(s, k % 12, 1.0, s, False)
    mem.update_priorities(
        np.arange(10000), rng.uniform(0.1, 10.0, size=10000)
    )
    batch = benchmark(mem.sample, 32)
    assert batch.weights.max() == pytest.approx(1.0)


def test_bench_qnet_forward_batch32(benchmark):
    """The per-learn-step forward cost at bench state width."""
    net = build_mlp(333, (135, 135), 12, rng=0)
    x = np.random.default_rng(0).normal(size=(32, 333))
    out = benchmark(net.predict, x)
    assert out.shape == (32, 12)


def test_bench_qnet_forward_paper_width(benchmark):
    """Single-state forward at the paper's 16,599-dim input."""
    net = build_mlp(16599, (135, 135), 12, rng=0)
    x = np.random.default_rng(0).normal(size=16599)
    out = benchmark(net.predict, x)
    assert out.shape == (12,)


def test_bench_qnet_train_step(benchmark):
    net = build_mlp(333, (135, 135), 12, rng=0)
    opt = RMSprop(net.params(), net.grads(), lr=2.5e-4)
    loss = MSELoss()
    rng = np.random.default_rng(0)
    x = rng.normal(size=(32, 333))
    t = rng.normal(size=(32, 12))

    def step():
        net.zero_grad()
        pred = net.forward(x)
        _v, g = loss(pred, t)
        net.backward(g)
        opt.step()

    benchmark(step)


def test_bench_engine_step_and_score(benchmark, bench_engine):
    bench_engine.reset()
    k = [0]

    def step():
        bench_engine.apply_action(k[0] % 12)
        k[0] += 1
        return bench_engine.score()

    s = benchmark(step)
    assert np.isfinite(s)


def test_bench_state_vector(benchmark, bench_engine):
    bench_engine.reset()
    state = benchmark(bench_engine.state_vector)
    assert state.shape == (bench_engine.state_dim(),)
