"""Bench: per-step pose scoring -- exact vs cutoff vs incremental vs field.

The environment step is dominated by one ``scorer.score(coords)`` call;
this bench measures that call at full 2BSM scale (3,264-atom receptor,
45-atom ligand) over a seeded action-shaped trajectory (Table 1 moves:
1 A shifts and 0.5 degree rotations) and writes a
``BENCH_score_step.json`` artifact for the CI score-bench job.

Alongside throughput it records the accuracy figures the scoring
policy (docs/PERFORMANCE.md, "Scoring kernels") promises:

- the incremental scorer tracks the cutoff scorer at the same cutoff to
  ~1e-15 relative (bound: ``DRIFT_REL_BOUND``) -- same pair set, same
  formulas, only floating-point association differs;
- cutoff truncation vs the exact scorer is the *cutoff's* accuracy
  knob, bounded per regime on the per-step score *change* (what the RL
  reward derives from): at most ``TRUNCATION_STEP_BOUND`` kcal/mol per
  step while scores are in the calm docking regime (|score| < 1e4),
  and at most ``TRUNCATION_CLASH_REL_BOUND`` *relative* drift on clash
  steps, where scores reach the paper's ~1e15-1e21 magnitudes and both
  scorers are dominated by the same clamped LJ/H-bond pairs;
- the hybrid field scorer's interpolation drift vs exact, per the same
  per-regime split, against its own documented budget
  (``FIELD_CALM_STEP_BOUND`` / ``FIELD_CLASH_REL_BOUND``), plus the
  additional calm-regime impact of storing the maps in float32
  (the ``dtype`` option).

The speedup assertions (incremental >= 5x exact, field >= 5x
incremental) are ratios of measurements on the same machine, so they
are robust to absolute runner speed.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.constants import DEFAULT_CUTOFF
from repro.scoring.field import (
    FIELD_CALM_STEP_BOUND,
    FIELD_CLASH_REL_BOUND,
    FieldScorer,
)
from repro.scoring.incremental import (
    DEFAULT_SKIN,
    DRIFT_REL_BOUND,
    IncrementalScorer,
)
from repro.scoring.scorers import CutoffScorer, ExactScorer

#: Artifact path (repo root under plain pytest; override via env).
ARTIFACT = Path(
    os.environ.get("BENCH_SCORE_STEP_JSON", "BENCH_score_step.json")
)

N_POSES = 240
PASSES = 2
#: Pose-batch size for the batched scoring rows (the screening driver's
#: shard-scale batch).
BATCH_K = 64
#: Required batched-field throughput over the single-pose field path at
#: ``BATCH_K`` (ISSUE 10 acceptance; measured well above).
FIELD_BATCH_SPEEDUP_BOUND = 3.0
#: Documented per-step score-change drift of cutoff truncation vs exact
#: at the default cutoff on the 2BSM-scale synthetic complex, calm
#: regime (measured ~57 kcal/mol; docs/PERFORMANCE.md, "Scoring
#: kernels").
TRUNCATION_STEP_BOUND = 100.0
#: Calm-regime threshold: |score| below this is "docking", above is
#: "clash" (clamped-overlap scores reach ~1e15 on this trajectory).
CALM_SCORE = 1e4
#: Documented relative per-step drift bound on clash steps (measured
#: ~9e-4).
TRUNCATION_CLASH_REL_BOUND = 1e-2


def _trajectory(built, n_poses: int, seed: int = 11) -> np.ndarray:
    """Action-shaped pose sequence: 1 A shifts / 0.5 deg rotations."""
    rng = np.random.default_rng(seed)
    coords = built.ligand_crystal.coords.copy()
    out = np.empty((n_poses,) + coords.shape)
    for t in range(n_poses):
        if rng.random() < 0.5:
            step = rng.normal(size=3)
            coords = coords + step / np.linalg.norm(step)  # 1 A shift
        else:
            axis = rng.normal(size=3)
            axis /= np.linalg.norm(axis)
            ang = np.radians(0.5)
            k = axis
            c, s = np.cos(ang), np.sin(ang)
            centroid = coords.mean(axis=0)
            rel = coords - centroid
            coords = (
                centroid
                + rel * c
                + np.cross(k, rel) * s
                + np.outer(rel @ k, k) * (1 - c)
            )
        out[t] = coords
    return out


def _measure(scorer, poses: np.ndarray) -> tuple[float, np.ndarray]:
    """(steps/second, scores) -- best of PASSES timed passes."""
    scores = np.empty(len(poses))
    for p in poses[:20]:  # warm-up (cell list, Verlet tables, caches)
        scorer.score(p)
    best = float("inf")
    for _ in range(PASSES):
        t0 = time.perf_counter()
        for i, p in enumerate(poses):
            scores[i] = scorer.score(p)
        best = min(best, time.perf_counter() - t0)
    return len(poses) / max(best, 1e-9), scores


def _measure_batch(
    scorer, poses: np.ndarray, k: int = BATCH_K
) -> tuple[float, np.ndarray]:
    """(poses/second, scores) scoring the trajectory in k-pose batches."""
    scores = np.empty(len(poses))
    scorer.score_batch(poses[:k])  # warm-up (maps, tables, Verlet list)
    best = float("inf")
    for _ in range(PASSES):
        t0 = time.perf_counter()
        for s in range(0, len(poses), k):
            scores[s : s + k] = scorer.score_batch(poses[s : s + k])
        best = min(best, time.perf_counter() - t0)
    return len(poses) / max(best, 1e-9), scores


def test_bench_score_step(paper_complex):
    built = paper_complex
    rec, lig = built.receptor, built.ligand_initial
    poses = _trajectory(built, N_POSES)

    exact = ExactScorer(rec, lig)
    cutoff = CutoffScorer(rec, lig, cutoff=DEFAULT_CUTOFF)
    inc = IncrementalScorer(
        rec, lig, cutoff=DEFAULT_CUTOFF, skin=DEFAULT_SKIN
    )

    fld = FieldScorer(rec, lig)
    fld32 = FieldScorer(rec, lig, dtype="float32")

    rate_exact, s_exact = _measure(exact, poses)
    rate_cutoff, s_cutoff = _measure(cutoff, poses)
    inc.rebuild_count = 0
    rate_inc, s_inc = _measure(inc, poses)
    rate_field, s_field = _measure(fld, poses)
    nf = []
    for p in poses:
        fld.score(p)
        nf.append(fld.near_fraction)
    s_field32 = np.array([fld32.score(p) for p in poses])
    field_bytes = fld.maps.nbytes()

    # Batched pose-major rows: the same trajectory scored in BATCH_K
    # batches through the fused score_batch kernels.  Every batch path
    # is bitwise-equal to the single-pose scores measured above.
    rate_field_batch, sb_field = _measure_batch(fld, poses)
    rate_cutoff_batch, sb_cutoff = _measure_batch(cutoff, poses)
    inc_batch = IncrementalScorer(
        rec, lig, cutoff=DEFAULT_CUTOFF, skin=DEFAULT_SKIN
    )
    rate_inc_batch, sb_inc = _measure_batch(inc_batch, poses)
    assert np.array_equal(sb_field, s_field)
    assert np.array_equal(sb_cutoff, s_cutoff)
    assert np.array_equal(sb_inc, s_inc)
    # rebuild rate over one pass (the count accumulated PASSES+warmup
    # passes over the same trajectory, so normalize by total calls).
    total_inc_calls = PASSES * N_POSES + 20
    rebuild_rate = inc.rebuild_count / total_inc_calls

    # Accuracy, part 1: incremental vs cutoff at the same cutoff.
    rel = np.abs(s_inc - s_cutoff) / np.maximum(1.0, np.abs(s_cutoff))
    max_rel_inc_vs_cutoff = float(rel.max())

    # Accuracy, part 2: truncation vs exact on per-step score changes
    # (the RL-relevant quantity), split by regime.
    d_inc = np.diff(s_inc)
    d_exact = np.diff(s_exact)
    calm = (np.abs(s_exact[:-1]) < CALM_SCORE) & (
        np.abs(s_exact[1:]) < CALM_SCORE
    )
    drift = np.abs(d_inc - d_exact)
    calm_step_drift = float(drift[calm].max()) if calm.any() else 0.0
    clash_rel_drift = (
        float((drift / np.maximum(1.0, np.abs(d_exact)))[~calm].max())
        if (~calm).any()
        else 0.0
    )
    sign_agreement = float(
        (np.sign(d_inc) == np.sign(d_exact)).mean()
    )

    # Accuracy, part 3: the field scorer's interpolation drift vs
    # exact, same per-regime split on per-step score changes, plus the
    # extra calm-regime drift from float32 map storage.
    d_field = np.diff(s_field)
    field_drift = np.abs(d_field - d_exact)
    field_calm_drift = (
        float(field_drift[calm].max()) if calm.any() else 0.0
    )
    field_clash_rel = (
        float(
            (field_drift / np.maximum(1.0, np.abs(d_exact)))[~calm].max()
        )
        if (~calm).any()
        else 0.0
    )
    d_field32 = np.diff(s_field32)
    f32_drift = np.abs(d_field32 - d_exact)
    field32_calm_drift = (
        float(f32_drift[calm].max()) if calm.any() else 0.0
    )
    field_sign_agreement = float(
        (np.sign(d_field) == np.sign(d_exact)).mean()
    )

    payload = {
        "receptor_atoms": rec.n_atoms,
        "ligand_atoms": lig.n_atoms,
        "n_poses": N_POSES,
        "cutoff": DEFAULT_CUTOFF,
        "skin": DEFAULT_SKIN,
        "exact_steps_per_second": round(rate_exact, 2),
        "cutoff_steps_per_second": round(rate_cutoff, 2),
        "incremental_steps_per_second": round(rate_inc, 2),
        "speedup_incremental_vs_exact": round(rate_inc / rate_exact, 3),
        "speedup_incremental_vs_cutoff": round(rate_inc / rate_cutoff, 3),
        "rebuild_count": inc.rebuild_count,
        "rebuild_rate": round(rebuild_rate, 4),
        "max_rel_drift_incremental_vs_cutoff": max_rel_inc_vs_cutoff,
        "calm_steps": int(calm.sum()),
        "calm_step_delta_drift_vs_exact": round(calm_step_drift, 3),
        "clash_rel_delta_drift_vs_exact": clash_rel_drift,
        "reward_sign_agreement_vs_exact": round(sign_agreement, 4),
        "field_steps_per_second": round(rate_field, 2),
        "speedup_field_vs_incremental": round(rate_field / rate_inc, 3),
        "speedup_field_vs_exact": round(rate_field / rate_exact, 3),
        "field_spacing": fld.spacing,
        "field_clash_radius": fld.clash_radius,
        "field_map_bytes": int(field_bytes),
        "field_near_fraction_mean": round(float(np.mean(nf)), 4),
        "field_calm_step_drift_vs_exact": round(field_calm_drift, 3),
        "field_clash_rel_drift_vs_exact": field_clash_rel,
        "field_reward_sign_agreement_vs_exact": round(
            field_sign_agreement, 4
        ),
        "field_float32_calm_step_drift_vs_exact": round(
            field32_calm_drift, 3
        ),
        "batch_k": BATCH_K,
        "field_batch_poses_per_second": round(rate_field_batch, 2),
        "speedup_field_batch_vs_single": round(
            rate_field_batch / rate_field, 3
        ),
        "cutoff_batch_poses_per_second": round(rate_cutoff_batch, 2),
        "speedup_cutoff_batch_vs_single": round(
            rate_cutoff_batch / rate_cutoff, 3
        ),
        "incremental_batch_poses_per_second": round(rate_inc_batch, 2),
        "speedup_incremental_batch_vs_single": round(
            rate_inc_batch / rate_inc, 3
        ),
        "batch_bitwise_equal": True,
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nscore-step throughput: {payload}")

    # Acceptance criteria (see ISSUE/docs): 5x the exact scorer at
    # default cutoff, drift within the documented policy bounds.
    assert rate_inc >= 5.0 * rate_exact, payload
    assert max_rel_inc_vs_cutoff <= DRIFT_REL_BOUND, payload
    assert calm_step_drift <= TRUNCATION_STEP_BOUND, payload
    assert clash_rel_drift <= TRUNCATION_CLASH_REL_BOUND, payload
    # The Verlet list must actually amortize: far fewer rebuilds than
    # steps (skin/2 displacement policy, see docs/PERFORMANCE.md).
    assert rebuild_rate < 0.5, payload
    # Field scorer: another >= 5x over incremental at default maps,
    # with drift inside its documented two-regime budget.
    assert rate_field >= 5.0 * rate_inc, payload
    assert field_calm_drift <= FIELD_CALM_STEP_BOUND, payload
    assert field_clash_rel <= FIELD_CLASH_REL_BOUND, payload
    # Pose-major batching: the fused field kernel must amortize per-call
    # overhead into >= 3x single-pose throughput at k=64 (ISSUE 10).
    assert (
        rate_field_batch >= FIELD_BATCH_SPEEDUP_BOUND * rate_field
    ), payload
