"""Bench: the sharded virtual-screening service at full 2BSM scale.

Screens a small synthetic library against the 3,264-atom receptor with
the incremental (Verlet-list) scorer and measures:

- serial (``workers=1``) and sharded (``workers=2``) ligands/min;
- the serial-vs-sharded speedup (asserted >= ``SPEEDUP_BOUND`` when the
  runner actually has >= 2 cores; on starved single-core runners the
  artifact records ``core_starved: true`` instead -- the vector-env
  bench precedent);
- ranking identity: sharded and serial runs must produce the identical
  ranking (bit-equal scores, same order);
- resume identity: an interrupted-then-resumed screen must reproduce
  the uninterrupted ranking bit-for-bit;
- the policy-mode rollout hot path: ligands/min of the pre-batching
  per-ligand reference loop versus the batched ``greedy_rollout`` over
  field-scored engines sharing one ``FieldMaps`` (results asserted
  bit-equal), plus the ``policy_forward_passes`` /
  ``score_batch_calls`` counters a policy-strategy screen reports.

Writes ``BENCH_screening.json`` for the CI screening-bench job (the
artifact renders in ``repro inspect`` when dropped into a run dir).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.metadock.library import generate_library
from repro.runtime.loop import RunInterrupted, RuntimeContext
from repro.screening import ScreeningConfig, run_screening

#: Artifact path (repo root under plain pytest; override via env).
ARTIFACT = Path(
    os.environ.get("BENCH_SCREENING_JSON", "BENCH_screening.json")
)

N_LIGANDS = 6
BUDGET = 240
SEED = 2018
#: Greedy-rollout step cap for the policy-mode leg.
POLICY_STEPS = 40
#: Required sharded (workers=2) over serial throughput on multi-core
#: runners.  Two workers on independent shards should approach 2x; 1.5x
#: leaves headroom for pool startup and the receptor pickle.
SPEEDUP_BOUND = 1.5


def _config(workers: int, shard_size: int = 1) -> ScreeningConfig:
    return ScreeningConfig(
        strategy="random",
        budget=BUDGET,
        seed=SEED,
        workers=workers,
        shard_size=shard_size,
        scoring_method="incremental",
    )


class _InterruptAfterFirstMemo:
    """Stop once results.json exists: after the first memoized shard."""

    def __init__(self, results_path: Path):
        self.results_path = results_path

    @property
    def stop_requested(self) -> bool:
        return self.results_path.exists()


def test_bench_screening(paper_complex, tmp_path):
    library = generate_library(
        paper_complex.config, N_LIGANDS, seed=SEED
    )

    t0 = time.perf_counter()
    serial = run_screening(paper_complex, library, _config(workers=1))
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    sharded = run_screening(paper_complex, library, _config(workers=2))
    sharded_s = time.perf_counter() - t0

    # Ranking identity: scores bit-equal, order identical.
    assert sharded.hits == serial.hits

    # Interrupt after the first shard, resume, compare bit-for-bit.
    run_dir = tmp_path / "interrupted"
    guard = _InterruptAfterFirstMemo(run_dir / "results.json")
    with pytest.raises(RunInterrupted):
        run_screening(
            paper_complex,
            library,
            _config(workers=1),
            runtime=RuntimeContext(run_dir, guard=guard),
        )
    resumed = run_screening(
        paper_complex,
        library,
        _config(workers=1),
        runtime=RuntimeContext(run_dir),
    )
    assert resumed.hits == serial.hits
    assert resumed.shards_cached >= 1
    resume_bit_equal = resumed.hits == serial.hits

    # Policy-mode leg: the batched rollout versus the per-ligand
    # reference loop over field-scored engines sharing one FieldMaps
    # (the same sharing the screening workers set up), then a real
    # policy-strategy screen for the batching counters.
    from repro.metadock.screening import _engine_for
    from repro.nn.checkpoints import save_network
    from repro.nn.network import build_mlp
    from repro.scoring.field import FieldMaps
    from repro.screening.policy import _greedy_rollout_loop, greedy_rollout

    maps = FieldMaps(paper_complex.receptor)

    def _field_engines():
        return [
            _engine_for(
                paper_complex,
                e.ligand,
                scoring_method="field",
                scoring_kwargs={"cells": maps},
            )
            for e in library
        ]

    # Warm the lazy per-atom-type maps before timing so neither leg
    # pays the one-time map builds (they are shared receptor-side
    # state, not rollout work).
    for eng in _field_engines():
        eng.score()

    loop_engines = _field_engines()
    net = build_mlp(
        max(e.state_dim() for e in loop_engines),
        [32],
        loop_engines[0].n_actions,
        rng=SEED,
    )
    t0 = time.perf_counter()
    loop_results, _ = _greedy_rollout_loop(
        net, loop_engines, max_steps=POLICY_STEPS
    )
    loop_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    batch_results, roll_stats = greedy_rollout(
        net, _field_engines(), max_steps=POLICY_STEPS
    )
    batched_s = time.perf_counter() - t0
    assert batch_results == loop_results

    policy_path = tmp_path / "policy.npz"
    save_network(net, policy_path)
    pol = run_screening(
        paper_complex,
        library,
        ScreeningConfig(
            strategy="policy",
            policy_path=str(policy_path),
            policy_max_steps=POLICY_STEPS,
            seed=SEED,
            workers=1,
            shard_size=3,
            scoring_method="field",
        ),
    )
    assert pol.policy_forward_passes > 0
    assert pol.score_batch_calls > 0

    cores = os.cpu_count() or 1
    core_starved = cores < 2
    speedup = serial_s / sharded_s if sharded_s > 0 else float("inf")
    payload = {
        "receptor_atoms": paper_complex.receptor.n_atoms,
        "ligand_atoms": paper_complex.ligand_crystal.n_atoms,
        "n_ligands": N_LIGANDS,
        "budget": BUDGET,
        "scoring_method": "incremental",
        "serial_seconds": round(serial_s, 4),
        "sharded_seconds": round(sharded_s, 4),
        "serial_ligands_per_min": round(serial.ligands_per_min, 2),
        "sharded_ligands_per_min": round(sharded.ligands_per_min, 2),
        "sharded_speedup": round(speedup, 3),
        "cpu_cores": cores,
        "core_starved": core_starved,
        "ranking_identical": sharded.hits == serial.hits,
        "resume_bit_equal": resume_bit_equal,
        "resumed_shards_cached": resumed.shards_cached,
        "policy_max_steps": POLICY_STEPS,
        "policy_loop_ligands_per_min": round(
            N_LIGANDS / loop_s * 60.0, 2
        ),
        "policy_batched_ligands_per_min": round(
            N_LIGANDS / batched_s * 60.0, 2
        ),
        "policy_batched_speedup": round(loop_s / batched_s, 3)
        if batched_s > 0
        else float("inf"),
        "policy_rollout_bit_equal": batch_results == loop_results,
        "policy_rollout_forward_passes": roll_stats.forward_passes,
        "policy_forward_passes": pol.policy_forward_passes,
        "score_batch_calls": pol.score_batch_calls,
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))

    assert payload["ranking_identical"]
    assert payload["resume_bit_equal"]
    assert payload["policy_rollout_bit_equal"]
    if not core_starved:
        assert speedup >= SPEEDUP_BOUND, (
            f"sharded speedup {speedup:.2f}x < {SPEEDUP_BOUND}x "
            f"on a {cores}-core runner"
        )
