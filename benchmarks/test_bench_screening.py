"""Bench: the sharded virtual-screening service at full 2BSM scale.

Screens a small synthetic library against the 3,264-atom receptor with
the incremental (Verlet-list) scorer and measures:

- serial (``workers=1``) and sharded (``workers=2``) ligands/min;
- the serial-vs-sharded speedup (asserted >= ``SPEEDUP_BOUND`` when the
  runner actually has >= 2 cores; on starved single-core runners the
  artifact records ``core_starved: true`` instead -- the vector-env
  bench precedent);
- ranking identity: sharded and serial runs must produce the identical
  ranking (bit-equal scores, same order);
- resume identity: an interrupted-then-resumed screen must reproduce
  the uninterrupted ranking bit-for-bit.

Writes ``BENCH_screening.json`` for the CI screening-bench job (the
artifact renders in ``repro inspect`` when dropped into a run dir).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.metadock.library import generate_library
from repro.runtime.loop import RunInterrupted, RuntimeContext
from repro.screening import ScreeningConfig, run_screening

#: Artifact path (repo root under plain pytest; override via env).
ARTIFACT = Path(
    os.environ.get("BENCH_SCREENING_JSON", "BENCH_screening.json")
)

N_LIGANDS = 6
BUDGET = 240
SEED = 2018
#: Required sharded (workers=2) over serial throughput on multi-core
#: runners.  Two workers on independent shards should approach 2x; 1.5x
#: leaves headroom for pool startup and the receptor pickle.
SPEEDUP_BOUND = 1.5


def _config(workers: int, shard_size: int = 1) -> ScreeningConfig:
    return ScreeningConfig(
        strategy="random",
        budget=BUDGET,
        seed=SEED,
        workers=workers,
        shard_size=shard_size,
        scoring_method="incremental",
    )


class _InterruptAfterFirstMemo:
    """Stop once results.json exists: after the first memoized shard."""

    def __init__(self, results_path: Path):
        self.results_path = results_path

    @property
    def stop_requested(self) -> bool:
        return self.results_path.exists()


def test_bench_screening(paper_complex, tmp_path):
    library = generate_library(
        paper_complex.config, N_LIGANDS, seed=SEED
    )

    t0 = time.perf_counter()
    serial = run_screening(paper_complex, library, _config(workers=1))
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    sharded = run_screening(paper_complex, library, _config(workers=2))
    sharded_s = time.perf_counter() - t0

    # Ranking identity: scores bit-equal, order identical.
    assert sharded.hits == serial.hits

    # Interrupt after the first shard, resume, compare bit-for-bit.
    run_dir = tmp_path / "interrupted"
    guard = _InterruptAfterFirstMemo(run_dir / "results.json")
    with pytest.raises(RunInterrupted):
        run_screening(
            paper_complex,
            library,
            _config(workers=1),
            runtime=RuntimeContext(run_dir, guard=guard),
        )
    resumed = run_screening(
        paper_complex,
        library,
        _config(workers=1),
        runtime=RuntimeContext(run_dir),
    )
    assert resumed.hits == serial.hits
    assert resumed.shards_cached >= 1
    resume_bit_equal = resumed.hits == serial.hits

    cores = os.cpu_count() or 1
    core_starved = cores < 2
    speedup = serial_s / sharded_s if sharded_s > 0 else float("inf")
    payload = {
        "receptor_atoms": paper_complex.receptor.n_atoms,
        "ligand_atoms": paper_complex.ligand_crystal.n_atoms,
        "n_ligands": N_LIGANDS,
        "budget": BUDGET,
        "scoring_method": "incremental",
        "serial_seconds": round(serial_s, 4),
        "sharded_seconds": round(sharded_s, 4),
        "serial_ligands_per_min": round(serial.ligands_per_min, 2),
        "sharded_ligands_per_min": round(sharded.ligands_per_min, 2),
        "sharded_speedup": round(speedup, 3),
        "cpu_cores": cores,
        "core_starved": core_starved,
        "ranking_identical": sharded.hits == serial.hits,
        "resume_bit_equal": resume_bit_equal,
        "resumed_shards_cached": resumed.shards_cached,
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))

    assert payload["ranking_identical"]
    assert payload["resume_bit_equal"]
    if not core_starved:
        assert speedup >= SPEEDUP_BOUND, (
            f"sharded speedup {speedup:.2f}x < {SPEEDUP_BOUND}x "
            f"on a {cores}-core runner"
        )
