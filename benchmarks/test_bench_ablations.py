"""Bench: Section 5 future-work ablations.

- algorithm variants (DQN / DDQN / dueling / distributional);
- flexible-ligand action space (12 vs 18+ actions);
- comm-layer ablation table (RAM vs file vs file+fsync).
"""

import pytest

from repro.chem.builders import build_complex
from repro.config import ci_scale_config
from repro.env.flexible_env import FlexibleDockingEnv
from repro.env.wrappers import TimeLimit
from repro.experiments.ablations import run_comm_ablation
from repro.experiments.figure4 import build_agent, run_figure4_experiment
from repro.rl.trainer import Trainer

ABLATION_CFG = ci_scale_config(episodes=25, seed=0, learning_rate=0.002)


@pytest.mark.parametrize(
    "variant",
    ["dqn", "ddqn", "dueling", "dueling-ddqn", "distributional", "rainbow"],
)
def test_bench_variant_training(benchmark, variant):
    cfg = ABLATION_CFG.replace(variant=variant)
    result = benchmark.pedantic(
        run_figure4_experiment, args=(cfg,), rounds=1, iterations=1
    )
    assert len(result.history.episodes) == cfg.episodes
    assert result.series.size > 0


def test_variants_all_learn_something():
    """Every variant's Q-curve must rise once learning starts."""
    for variant in ("dqn", "ddqn", "dueling"):
        cfg = ABLATION_CFG.replace(variant=variant)
        result = run_figure4_experiment(cfg)
        s = result.shape(smooth=5)
        print(f"\n{variant}: first={s.first:.2f} peak={s.peak:.2f}")
        assert s.peak > s.first, variant


def test_bench_flexible_ligand_training(benchmark):
    """The 18-action extension: same trainer, larger action space."""
    cfg = ABLATION_CFG
    built = build_complex(cfg.complex)

    def run():
        env = TimeLimit(
            FlexibleDockingEnv(
                built,
                n_torsions=cfg.complex.rotatable_bonds,
                shift_length=cfg.shift_length,
                rotation_angle_deg=cfg.rotation_angle_deg,
            ),
            cfg.max_steps_per_episode,
        )
        try:
            agent = build_agent(cfg, env.state_dim, env.n_actions)
            return Trainer(
                env,
                agent,
                episodes=10,
                max_steps_per_episode=cfg.max_steps_per_episode,
                learning_start=cfg.learning_start,
                target_update_steps=cfg.target_update_steps,
            ).run()
        finally:
            env.close()

    history = benchmark.pedantic(run, rounds=1, iterations=1)
    assert history.total_steps > 0


def test_bench_target_update_sweep(benchmark):
    """Sweep the 'empirically set' C (target-sync period) of Table 1."""
    from repro.experiments.sweep import run_sweep

    cfg = ABLATION_CFG.replace(episodes=12)

    def run():
        return run_sweep(cfg, "target_update_steps", [30, 120, 480])

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + result.summary())
    assert len(result.results) == 3
    # Every setting must still learn (rising Q).
    for value, shape in result.shapes().items():
        assert shape.peak >= shape.first, f"C={value}"


def test_bench_cnn_image_state_training(benchmark):
    """The Section 5 CNN-on-images extension, trained end to end."""
    from repro.env.docking_env import DockingEnv
    from repro.env.image_state import ImageStateEnv
    from repro.metadock.engine import MetadockEngine
    from repro.nn.conv import build_cnn
    from repro.rl.agent import AgentConfig, DQNAgent

    cfg = ABLATION_CFG
    built = build_complex(cfg.complex)

    def run():
        env = TimeLimit(
            ImageStateEnv(
                DockingEnv(
                    MetadockEngine(
                        built,
                        shift_length=cfg.shift_length,
                        rotation_angle_deg=cfg.rotation_angle_deg,
                    )
                ),
                resolution=16,
            ),
            cfg.max_steps_per_episode,
        )
        try:
            net = build_cnn(
                env.image_shape, env.n_actions,
                conv_channels=(8,), hidden=32, rng=cfg.seed,
            )
            agent = DQNAgent(
                AgentConfig.from_run_config(
                    cfg, env.state_dim, env.n_actions
                ),
                network=net,
            )
            return Trainer(
                env,
                agent,
                episodes=8,
                max_steps_per_episode=cfg.max_steps_per_episode,
                learning_start=cfg.learning_start,
                target_update_steps=cfg.target_update_steps,
            ).run()
        finally:
            env.close()

    history = benchmark.pedantic(run, rounds=1, iterations=1)
    assert history.total_steps > 0


def test_bench_action_repeat_ablation(benchmark):
    """Step-granularity ablation: repeat k actions per decision."""
    import numpy as np

    from repro.env.docking_env import make_env
    from repro.env.wrappers import ActionRepeat

    cfg = ABLATION_CFG
    built = build_complex(cfg.complex)

    def run():
        out = {}
        rng = np.random.default_rng(cfg.seed)
        for k in (1, 4):
            env = ActionRepeat(make_env(cfg, built), k) if k > 1 else make_env(cfg, built)
            try:
                env.reset()
                deltas = []
                for _ in range(60):
                    _s, _r, done, info = env.step(int(rng.integers(12)))
                    deltas.append(abs(info.get("score_delta", 0.0)))
                    if done:
                        env.reset()
                out[k] = float(np.mean(deltas))
            finally:
                env.close()
        return out

    deltas = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nmean |score delta|: repeat1={deltas[1]:.3f} repeat4={deltas[4]:.3f}")
    # Coarser decisions see larger score changes on average.
    assert deltas[4] > deltas[1]


def test_bench_comm_ablation_table(benchmark):
    result = benchmark.pedantic(
        run_comm_ablation,
        args=(ABLATION_CFG,),
        kwargs={"steps": 150},
        rounds=1,
        iterations=1,
    )
    print("\n" + result.summary())
    ram_sps = float(result.rows[0][1])
    file_sps = float(result.rows[1][1])
    fsync_sps = float(result.rows[2][1])
    # RAM must dominate; fsync is the worst case.
    assert ram_sps > file_sps * 0.99
    assert file_sps > fsync_sps * 0.8
