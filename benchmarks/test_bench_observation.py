"""Bench: observation-codec encode and act()/policy-inference throughput.

The descriptor codec's deployment claim (docs/OBSERVATIONS.md): shrinking
the Q-network input from the paper's 16,599-dim raw state to the
281-dim pocket-relative descriptor vector makes the acting/inference
path -- one forward pass per environment step, the per-step cost that
survives once training amortizes -- at least **5x** faster at the
paper's Table-1 network shape.

Two measurement groups:

1. ``encode``: steps/second of each registered codec over a bench-scale
   engine (what the env pays per emitted state);
2. ``inference``: single-state and batch-32 forward passes through
   paper-shaped float32 MLPs (16599 vs 281 input width, 135x135 hidden,
   12 actions) -- the greedy-rollout/act() hot path.

Writes a ``BENCH_observation.json`` artifact (consumed by the CI
``observation-bench`` job and rendered by ``repro inspect``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.chem.builders import build_complex
from repro.chem.descriptors import pocket_feature_dim
from repro.config import ComplexConfig
from repro.env.observation import OBSERVATION_MODES, make_codec
from repro.metadock.engine import MetadockEngine
from repro.nn.network import build_mlp

#: Where the throughput artifact lands (repo root under plain pytest;
#: override with BENCH_OBSERVATION_JSON).
ARTIFACT = Path(
    os.environ.get("BENCH_OBSERVATION_JSON", "BENCH_observation.json")
)

#: Paper Table-1 network shape.
RAW_DIM = 16599
DESC_DIM = pocket_feature_dim(45, 44)  # 281
HIDDEN = (135, 135)
N_ACTIONS = 12
BATCH = 32

#: Bench-scale complex for codec-encode timing (kept small so encode
#: rates measure codec overhead, not complex construction).
BENCH_COMPLEX = ComplexConfig(
    receptor_atoms=300,
    ligand_atoms=24,
    receptor_radius=12.0,
    pocket_depth=4.0,
    pocket_aperture=0.55,
    initial_offset=9.0,
    rotatable_bonds=2,
    seed=2018,
)

WARMUP = 5
ENCODE_ITERS = 2000
INFER_ITERS = 300


def _rate(fn, iters, warmup=WARMUP):
    """Throughput in calls per CPU-second (see test_bench_train_step)."""
    for _ in range(warmup):
        fn()
    t0 = time.process_time()
    for _ in range(iters):
        fn()
    return iters / max(time.process_time() - t0, 1e-9)


def test_bench_observation_throughput():
    built = build_complex(BENCH_COMPLEX)
    engine = MetadockEngine(built)
    engine.reset()

    payload = {
        "raw_dim": RAW_DIM,
        "descriptor_dim": DESC_DIM,
        "hidden_sizes": list(HIDDEN),
        "n_actions": N_ACTIONS,
        "bench_engine_state_dim": engine.state_dim(),
    }

    # -- 1. codec encode throughput over the bench engine.
    for mode in OBSERVATION_MODES:
        codec = make_codec(mode, engine)
        payload[f"encode_{mode}_dim"] = codec.spec.dim
        payload[f"encode_{mode}_per_second"] = round(
            _rate(codec.encode, ENCODE_ITERS), 1
        )

    # -- 2. act()/policy-inference at the paper network shape.
    rng = np.random.default_rng(7)
    raw_net = build_mlp(
        RAW_DIM, HIDDEN, N_ACTIONS, rng=rng, dtype=np.float32
    )
    desc_net = build_mlp(
        DESC_DIM, HIDDEN, N_ACTIONS, rng=rng, dtype=np.float32
    )
    raw_state = rng.standard_normal((1, RAW_DIM)).astype(np.float32)
    desc_state = rng.standard_normal((1, DESC_DIM)).astype(np.float32)
    raw_batch = rng.standard_normal((BATCH, RAW_DIM)).astype(np.float32)
    desc_batch = rng.standard_normal((BATCH, DESC_DIM)).astype(np.float32)

    # Interleave raw/descriptor reps so ambient load lands on both
    # sides of each ratio; assert on the best *paired* ratio (shared
    # CI runners routinely carry background load).
    for _ in range(WARMUP):
        raw_net.predict(raw_state)
        desc_net.predict(desc_state)
    raw_rates, desc_rates = [], []
    for _ in range(4):
        raw_rates.append(
            _rate(lambda: raw_net.predict(raw_state), INFER_ITERS, warmup=0)
        )
        desc_rates.append(
            _rate(lambda: desc_net.predict(desc_state), INFER_ITERS, warmup=0)
        )
    act_speedup = max(
        d / max(r, 1e-9) for d, r in zip(desc_rates, raw_rates)
    )
    payload["act_raw_per_second"] = round(max(raw_rates), 1)
    payload["act_descriptor_per_second"] = round(max(desc_rates), 1)
    payload["act_speedup"] = round(act_speedup, 2)

    raw_b, desc_b = [], []
    for _ in range(4):
        raw_b.append(
            _rate(lambda: raw_net.predict(raw_batch), INFER_ITERS, warmup=0)
        )
        desc_b.append(
            _rate(lambda: desc_net.predict(desc_batch), INFER_ITERS, warmup=0)
        )
    batch_speedup = max(d / max(r, 1e-9) for d, r in zip(desc_b, raw_b))
    payload["batch32_raw_per_second"] = round(max(raw_b), 1)
    payload["batch32_descriptor_per_second"] = round(max(desc_b), 1)
    payload["batch32_speedup"] = round(batch_speedup, 2)

    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nobservation throughput: {payload}")

    # Acceptance: descriptor input fits the 300-dim budget...
    assert DESC_DIM <= 300, payload
    # ...and buys at least 5x act()/policy-inference throughput over
    # the raw paper-shaped input layer.
    assert act_speedup >= 5.0, payload
