"""Bench: Figure 4 -- the training curve and its shape.

The paper reports average max predicted Q per episode rising to ~35,000
around episode 500 and declining to ~27,000 by 1,800 (non-convergence).
At CI scale we reproduce and assert the *shape* -- rise from the start of
learning to an interior peak, then decline -- and print the measured
curve for EXPERIMENTS.md.  Absolute magnitudes are expected to differ
(unnormalized-input artefact; see DESIGN.md section 5).
"""

import numpy as np
import pytest

from repro.experiments.figure4 import run_figure4_experiment

from benchmarks.conftest import FIGURE4_BENCH_CFG


@pytest.fixture(scope="module")
def figure4_result():
    return run_figure4_experiment(FIGURE4_BENCH_CFG)


def test_bench_figure4_training(benchmark):
    """The full training run, timed (one round -- it is ~10s)."""
    result = benchmark.pedantic(
        run_figure4_experiment, args=(FIGURE4_BENCH_CFG,),
        rounds=1, iterations=1,
    )
    assert len(result.history.episodes) == FIGURE4_BENCH_CFG.episodes


def test_figure4_shape_rise_peak_decline(figure4_result):
    """The paper's non-convergence signature, asserted."""
    shape = figure4_result.shape(smooth=5)
    print("\n" + figure4_result.summary())
    assert shape.rose, "avg max Q must rise after learning starts"
    assert shape.peak_interior, "peak must not sit at either end"
    assert shape.declined_after_peak, (
        "avg max Q must decline from its peak (the paper's "
        "non-convergence result)"
    )


def test_figure4_peak_to_final_ratio(figure4_result):
    """Paper: peak ~35k -> final ~27k, a ~23% drop.  We assert a decline
    of at least a few percent and at most a collapse (shape, not size)."""
    s = figure4_result.shape(smooth=5)
    drop = (s.peak - s.last) / abs(s.peak)
    print(f"\npeak={s.peak:.2f} final={s.last:.2f} drop={100 * drop:.1f}%")
    assert 0.0 < drop < 0.9


def test_figure4_q_scale_consistent_with_rewards(figure4_result):
    """With clipped unit rewards and gamma=0.99, Q cannot exceed the
    geometric bound 1/(1-gamma); magnitudes must be sane."""
    gamma = FIGURE4_BENCH_CFG.gamma
    bound = 1.0 / (1.0 - gamma)
    series = figure4_result.series
    assert series.max() < 2.0 * bound  # slack for overestimation spikes
    assert np.isfinite(series).all()


def test_figure4_measurement_protocol(figure4_result):
    """The series starts only once learning is active, per the paper."""
    eps = figure4_result.history.episodes
    inactive = [e for e in eps if not e.learning_active]
    active = [e for e in eps if e.learning_active]
    assert len(active) == figure4_result.series.size
    # Learning starts early at CI scale but not at episode zero.
    assert len(inactive) >= 1
