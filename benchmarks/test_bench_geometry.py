"""Bench: Figures 1 & 3 -- the 2BSM complex geometry.

The figures' quantitative content: a complex with the paper's atom
counts whose crystallographic recess is the score optimum, a displaced
initial pose, and catastrophic scores inside the protein.  Timed
sections: complex construction at bench and 2BSM scale.
"""

import numpy as np
import pytest

from repro.chem.builders import build_complex
from repro.config import ComplexConfig
from repro.experiments.geometry import run_geometry_experiment
from repro.scoring.composite import interaction_score

from benchmarks.conftest import BENCH_COMPLEX_CFG


def test_bench_build_complex(benchmark):
    built = benchmark.pedantic(
        build_complex, args=(BENCH_COMPLEX_CFG,), rounds=3, iterations=1
    )
    assert built.receptor.n_atoms == BENCH_COMPLEX_CFG.receptor_atoms


def test_bench_build_2bsm_scale(benchmark):
    built = benchmark.pedantic(
        build_complex, args=(ComplexConfig(),), rounds=2, iterations=1
    )
    assert built.receptor.n_atoms == 3264
    assert built.ligand_crystal.n_atoms == 45


def test_figure3_pose_ordering(bench_complex):
    """Crystal (B) must decisively outscore initial (A) -- Figure 3."""
    s_crystal = interaction_score(
        bench_complex.receptor, bench_complex.ligand_crystal
    )
    s_initial = interaction_score(
        bench_complex.receptor, bench_complex.ligand_initial
    )
    print(f"\ncrystal={s_crystal:.1f}  initial={s_initial:.1f}")
    assert s_crystal > s_initial
    assert s_crystal > 0


def test_figure1_geometry_report(benchmark):
    report = benchmark.pedantic(
        run_geometry_experiment, args=(BENCH_COMPLEX_CFG,),
        rounds=2, iterations=1,
    )
    assert report.pocket_is_optimum
    assert report.overlap_is_catastrophic
    print("\n" + report.summary())


def test_score_range_matches_paper_narrative(paper_complex):
    """Paper: scores span 'big negative numbers (e.g. -4.5e+21) to 500'."""
    crystal = interaction_score(
        paper_complex.receptor, paper_complex.ligand_crystal
    )
    deep = paper_complex.ligand_crystal.translated(
        -paper_complex.pocket_axis * paper_complex.config.receptor_radius
    )
    clash = interaction_score(paper_complex.receptor, deep)
    print(f"\n2BSM-scale crystal score: {crystal:.1f}   clash: {clash:.3e}")
    assert 0 < crystal < 2000.0
    assert clash < -1e9
